"""One-pass out-of-order core timeline model.

Each trace record is processed exactly once, in program order, computing the
cycle at which it fetches, dispatches, issues, completes and commits.  The
machine's structural limits appear as ``max`` terms on those timestamps:

* **fetch** — at most ``fetch_width`` records per cycle; stalled after a
  mispredicted branch until it resolves plus the refill penalty;
* **dispatch** — one cycle after fetch; waits for a free RUU entry (the
  RUU entry of the oldest in-flight instruction frees when it commits) and,
  for memory ops, a free LSQ entry;
* **issue** — waits for operands (the completion time of the producer
  ``DEP`` records earlier) and a functional unit from the right pool;
* **complete** — FU latency, or the memory hierarchy's answer for loads;
* **commit** — in order, at most ``commit_width`` per cycle, not before
  completion.

Loads enter the cache at issue time, so cache/LSQ back-pressure (a stalled
cache pipeline pushes the load's grant time out) directly delays completion
and, through the RUU-full term, every subsequent instruction — the paper's
"cache stalls (plus MSHR full) can temporarily stall the LSQ" behaviour.
Stores write the cache at commit time (write buffer) without blocking
commit, but their port/bus/MSHR traffic is real.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import CoreConfig
from repro.cpu import codecache
from repro.cpu.fastpath import EMITTER_VERSION, TraceSpeculator, emit_hit_inline
from repro.hotpath import hotpath
from repro.isa.instr import FU_LATENCY, FU_POOL, Op
from repro.kernel.module import Component
from repro.kernel.resources import MultiPortResource
from repro.obs.tracing import TRACER

#: Completion-history ring size for dependence lookups (power of two).
_RING = 512
_RING_MASK = _RING - 1

#: Sampling threshold meaning "never" (no sampler attached).
_NO_SAMPLE = 1 << 62


@dataclass
class CoreStats:
    """Outcome of one simulated trace."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    load_latency_total: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def avg_load_latency(self) -> float:
        if not self.loads:
            return 0.0
        return self.load_latency_total / self.loads


class OoOCore(Component):
    """Trace-driven out-of-order core bound to one memory hierarchy."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        name: str = "core",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.hierarchy = hierarchy
        #: The last run's :class:`TraceSpeculator` (``None`` on slow-path
        #: runs).  Diagnostics only — its commit/abort counters are not part
        #: of ``stats_report()``, so fast and slow runs fingerprint alike.
        self.speculation: Optional[TraceSpeculator] = None
        self.fu = {
            "int_alu": MultiPortResource(config.int_alu),
            "int_mul": MultiPortResource(config.int_mul),
            "fp_alu": MultiPortResource(config.fp_alu),
            "fp_mul": MultiPortResource(config.fp_mul),
            "lsu": MultiPortResource(config.lsu),
        }

    def run(self, trace: Sequence, measure_from: int = 0,
            sampler=None, fast: bool = True, checkpoint=None) -> CoreStats:
        """Simulate ``trace`` to completion; return the run's statistics.

        ``measure_from`` marks the end of the warm-up window: IPC is
        reported over instructions ``measure_from..end`` only (caches and
        predictors stay warm across the boundary), the standard discipline
        for short traces where cold misses would otherwise dominate.

        ``sampler`` is an optional :class:`repro.obs.IntervalSampler`:
        every ``sampler.interval`` records it snapshots the hierarchy's
        statistics for per-interval rate breakdowns.  It only observes —
        a sampled run's result is identical to an unsampled one — and
        when absent costs one integer comparison per record.

        ``fast`` arms the guarded trace-speculation fast path
        (:mod:`repro.cpu.fastpath`): accesses that miss nothing replay a
        pre-recorded L1-hit sequence and anything else aborts into the
        ordinary hierarchy calls.  Results are bit-identical either way;
        the knob exists so the equivalence is *testable* (and spec-hashed,
        see :class:`repro.exec.RunSpec`).

        ``checkpoint`` is an optional duck-typed checkpointer (``.every``,
        ``.cut(index, state)``, ``.load()``; see
        :class:`repro.exec.checkpoint.Checkpointer`): a mid-run snapshot is
        cut every ``every`` committed records, and a prior snapshot, if one
        loads, resumes this run from its record index.  Restore-then-finish
        is bit-identical to an uninterrupted run; when no checkpointer is
        attached the loops are exactly today's code (the fast path's emitted
        source is unchanged, so the disabled path provably costs nothing).
        """
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("cpu.run", cat="cpu")
        resume = checkpoint.load() if checkpoint is not None else None
        saved_loop = None
        if resume is not None:
            _, saved = resume
            # Restore the whole machine *before* compiling the fast path so
            # its emitted guards bind the restored (in-place) containers.
            self.hierarchy.restore(saved["hierarchy"])
            for fu_name, fu_state in saved["core"]["fu"].items():
                self.fu[fu_name].restore(fu_state)
            saved_loop = tuple(saved["loop"])
        if fast:
            speculator = TraceSpeculator(self.hierarchy)
            self.speculation = speculator
            if resume is not None and saved["core"]["spec_counts"] is not None:
                speculator.counts[:] = saved["core"]["spec_counts"]
            loop = self._compile_fast_loop(speculator, sampler,
                                           checkpoint, saved_loop)
            outcome = loop(trace, measure_from)
        else:
            self.speculation = None
            outcome = self._slow_loop(trace, measure_from, sampler,
                                      checkpoint, saved_loop)
        (index, commit_cycle, warmup_end_cycle, n_loads, n_stores,
         n_branches, n_mispredicts, load_latency_total) = outcome

        stats = CoreStats()
        stats.instructions = index
        if measure_from and stats.instructions > measure_from:
            stats.instructions -= measure_from
            stats.cycles = commit_cycle - warmup_end_cycle
        else:
            stats.cycles = commit_cycle if stats.instructions else 0
        stats.loads = n_loads
        stats.stores = n_stores
        stats.branches = n_branches
        stats.mispredicts = n_mispredicts
        stats.load_latency_total = load_latency_total
        if sampler is not None:
            sampler.finish(index, commit_cycle)
        if tracing:
            TRACER.end(instructions=stats.instructions, cycles=stats.cycles)
        return stats

    @hotpath
    def _slow_loop(self, trace: Sequence, measure_from: int, sampler,
                   checkpoint=None, resume=None):
        """The reference pipeline walk, interpreted, no speculation.

        This is the loop the generated fast path must be indistinguishable
        from: every access goes the long way through the hierarchy.  The
        golden-fingerprint tests diff the two record by record (via their
        stats), which is why this stays plain, readable Python.

        ``checkpoint``/``resume`` mirror the fast path's mid-run snapshot
        support: a disabled checkpointer costs one integer comparison per
        record (the same discipline as the sampler's ``_NO_SAMPLE``
        sentinel), and ``resume`` is the loop-state tuple a prior cut saved.
        """
        sample_every = sampler.interval if sampler is not None else 0
        next_sample = sample_every if sample_every else _NO_SAMPLE
        ckpt_every = checkpoint.every if checkpoint is not None else 0
        next_ckpt = ckpt_every if ckpt_every else _NO_SAMPLE
        ckpt_cut = self._checkpoint_cut(checkpoint, None) if ckpt_every else None
        cfg = self.config
        hierarchy = self.hierarchy
        load_op = int(Op.LOAD)
        store_op = int(Op.STORE)
        branch_op = int(Op.BRANCH)
        latency, fu_of = self._dispatch_tables()

        # Hot-path locals: every per-record attribute chain hoisted once.
        h_load = hierarchy.load
        h_store = hierarchy.store
        h_fetch = hierarchy.fetch_instruction

        fetch_cycle = 0
        fetch_slots = 0
        squash_until = 0
        # Instruction-cache state: one lookup per fetched line, not per
        # instruction — sequential fetch within a resident line is free.
        icache_line_bits = hierarchy.l1i.line_bits
        last_fetch_block = -1
        ruu = deque()
        lsq = deque()
        ruu_size = cfg.ruu_size
        lsq_size = cfg.lsq_size
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        penalty = cfg.mispredict_penalty
        commit_cycle = 0
        commit_slots = 0
        ring = [0] * _RING
        ring_pos = 0

        ruu_len = 0
        lsq_len = 0
        n_loads = 0
        n_stores = 0
        n_branches = 0
        n_mispredicts = 0
        load_latency_total = 0
        warmup_end_cycle = 0
        index = 0
        ruu_append = ruu.append
        ruu_popleft = ruu.popleft
        lsq_append = lsq.append
        lsq_popleft = lsq.popleft

        if resume is not None:
            (fetch_cycle, fetch_slots, squash_until, last_fetch_block,
             ruu_init, lsq_init, ruu_len, lsq_len, commit_cycle, commit_slots,
             ring_init, ring_pos, n_loads, n_stores, n_branches,
             n_mispredicts, load_latency_total, warmup_end_cycle,
             index) = resume
            ruu.extend(ruu_init)
            lsq.extend(lsq_init)
            ring[:] = ring_init
            trace = trace[index:]
            if sample_every:
                next_sample = ((index // sample_every) + 1) * sample_every
            if ckpt_every:
                next_ckpt = ((index // ckpt_every) + 1) * ckpt_every

        for record in trace:
            if index == measure_from:
                warmup_end_cycle = commit_cycle
            index += 1
            op, pc, addr, dep, extra = record

            # Fetch: width-limited, squash-gated, instruction-cache-gated.
            if squash_until > fetch_cycle:
                fetch_cycle = squash_until
                fetch_slots = 0
            fetch_block = pc >> icache_line_bits
            if fetch_block != last_fetch_block:
                last_fetch_block = fetch_block
                line_ready = h_fetch(pc, fetch_cycle)
                if line_ready > fetch_cycle + 1:
                    fetch_cycle = line_ready - 1
                    fetch_slots = 0
            if fetch_slots >= fetch_width:
                fetch_cycle += 1
                fetch_slots = 0
            fetch_slots += 1

            # Dispatch: decode bubble + RUU (and LSQ) availability.  Queue
            # occupancy is tracked in local ints (every record pushes exactly
            # one RUU entry, memory ops exactly one LSQ entry), saving two
            # len() calls per record.
            dispatch = fetch_cycle + 1
            if ruu_len >= ruu_size:
                oldest = ruu_popleft()
                if oldest > dispatch:
                    dispatch = oldest
            else:
                ruu_len += 1
            is_mem = op == load_op or op == store_op
            if is_mem:
                if lsq_len >= lsq_size:
                    oldest = lsq_popleft()
                    if oldest > dispatch:
                        dispatch = oldest
                else:
                    lsq_len += 1

            # Operand readiness through the completion ring.
            ready = dispatch
            if dep and dep < _RING:
                producer = ring[(ring_pos - dep) & _RING_MASK]
                if producer > ready:
                    ready = producer

            # Issue: functional unit from the right pool.
            # MultiPortResource.acquire inlined (the call was the hottest
            # line in the profile): one ledger probe on the untouched-cycle
            # common case.  _prune keeps the ledger dict's identity stable.
            res = fu_of[op]
            ledger = res._ledger
            floor = res._floor
            start = ready if ready > floor else floor
            count = ledger.get(start)
            if count is None:
                ledger[start] = 1
            else:
                n = res.n_ports
                while count is not None and count >= n:
                    start += 1
                    count = ledger.get(start)
                ledger[start] = 1 if count is None else count + 1
            res.grants += 1
            if len(ledger) > 8192:  # MultiPortResource._PRUNE_EVERY
                res._prune(start)

            # Complete.
            if op == load_op:
                complete = h_load(pc, addr, start)
                load_latency_total += complete - start
                n_loads += 1
            else:
                complete = start + latency[op]
                if op == store_op:
                    n_stores += 1
                elif op == branch_op:
                    n_branches += 1
                    if extra:
                        n_mispredicts += 1
                        resolve = complete
                        if squash_until < resolve + penalty:
                            squash_until = resolve + penalty

            # Commit: in order, width-limited.
            commit = complete + 1
            if commit > commit_cycle:
                commit_cycle = commit
                commit_slots = 1
            else:
                commit_slots += 1
                if commit_slots > commit_width:
                    commit_cycle += 1
                    commit_slots = 1
                commit = commit_cycle

            if op == store_op:
                # The write buffer performs the store after commit.
                h_store(pc, addr, extra, commit)

            ruu_append(commit)
            if is_mem:
                lsq_append(commit)
            ring[ring_pos] = complete
            ring_pos = (ring_pos + 1) & _RING_MASK
            if index >= next_sample:
                sampler.sample(index, commit_cycle)
                next_sample += sample_every
            if index >= next_ckpt:
                # simlint: allow[SIM702] guarded by next_ckpt: allocates once per checkpoint interval, never per record
                ckpt_cut((fetch_cycle, fetch_slots, squash_until,
                          last_fetch_block, list(ruu), list(lsq), ruu_len,
                          lsq_len, commit_cycle, commit_slots, list(ring),
                          ring_pos, n_loads, n_stores, n_branches,
                          n_mispredicts, load_latency_total,
                          warmup_end_cycle, index))
                next_ckpt += ckpt_every

        return (index, commit_cycle, warmup_end_cycle, n_loads, n_stores,
                n_branches, n_mispredicts, load_latency_total)

    def _checkpoint_cut(self, checkpoint, speculator):
        """Bind a one-call snapshot closure for the pipeline loops.

        The loop hands over its entire local state as one tuple (record
        index last); everything else stateful — the hierarchy, the FU
        ledgers, the speculator's guard counters — is snapshotted here, so
        a cut is a single call on the loop's cold path.
        """
        hierarchy = self.hierarchy
        fu = self.fu

        def cut(loop_state):
            checkpoint.cut(loop_state[-1], {
                "hierarchy": hierarchy.snapshot(),
                "core": {
                    "fu": {name: pool.snapshot()
                           for name, pool in fu.items()},
                    "spec_counts": (list(speculator.counts)
                                    if speculator is not None else None),
                },
                "loop": loop_state,
            })

        return cut

    def _dispatch_tables(self):
        """Dense per-op latency and FU-pool tables (list index beats dict)."""
        n_ops = max(int(op) for op in Op) + 1
        latency = [0] * n_ops
        for op, lat in FU_LATENCY.items():
            latency[int(op)] = lat
        fu_of = [None] * n_ops
        for op, pool in FU_POOL.items():
            fu_of[int(op)] = self.fu[pool]
        return latency, fu_of

    def _compile_fast_loop(self, speculator: TraceSpeculator, sampler,
                           checkpoint=None, resume=None):
        """Compile the generated pipeline walk for this core.

        Emission (:meth:`_emit_fast_loop`) and compilation are split so the
        SIM8xx guard-completeness verifier can obtain the exact source the
        fast path will run without executing anything.  Code objects are
        cached by source + emitter version (the only variation is baked
        constants), so repeated runs of one machine shape recompile nothing.
        """
        ckpt_every = checkpoint.every if checkpoint is not None else 0
        ckpt_cut = (self._checkpoint_cut(checkpoint, speculator)
                    if ckpt_every else None)
        source, bind = self._emit_fast_loop(
            speculator.counts, sampler,
            ckpt_cut=ckpt_cut, ckpt_every=ckpt_every, resume=resume)
        code = codecache.load_or_compile(
            source, "<repro.cpu.ooo.fastloop>", version=EMITTER_VERSION
        )
        namespace = {f"g_{name}": obj for name, obj in bind.items()}
        exec(code, namespace)  # noqa: S102 - closed namespace, own source
        return namespace["run_loop"]

    def _emit_fast_loop(self, counts, sampler,
                        ckpt_cut=None, ckpt_every=0, resume=None):
        """Generate the pipeline walk as one straight-line function.

        Returns ``(source, bind)``: the full ``def run_loop(...)`` source
        and the namespace objects it expects (bound under ``g_`` names and
        re-localized in the preamble).  The source is :meth:`_slow_loop`
        translated statement for statement, with three substitutions:

        * configuration constants (widths, queue sizes, line bits, the
          mispredict penalty, the ring mask) are baked as literals;
        * the three replay calls are replaced by the speculator's *inline*
          hit blocks (:func:`repro.cpu.fastpath.emit_hit_inline`) — the same
          recorded sequence the closures compile, embedded at the call site
          so a committed replay costs no call frames at all, with the slow
          hierarchy call as each block's ``None`` fallback;
        * when no sampler is attached the sampling check is omitted rather
          than guarded.

        Checkpointing follows the same discipline as sampling: the cut
        check, the resume preamble and their bindings are emitted only when
        a checkpointer is armed, so the disabled path's source is
        byte-identical to today's — same codecache entry, zero cost.
        ``resume`` is the saved loop-state tuple; its record index is known
        at emit time, so the resumed thresholds are baked as literals.

        Everything else — hierarchy calls, FU ledgers, stat objects — is
        bound through the exec namespace, localized once in the preamble.
        """
        hierarchy = self.hierarchy
        cfg = self.config
        latency, fu_of = self._dispatch_tables()

        bind = {
            "latency": latency,
            "fu_of": fu_of,
            "h_load": hierarchy.load,
            "h_store": hierarchy.store,
            "h_fetch": hierarchy.fetch_instruction,
            "deque": deque,
        }
        load_op = int(Op.LOAD)
        store_op = int(Op.STORE)
        branch_op = int(Op.BRANCH)

        ifetch_block, b = emit_hit_inline(
            counts, hierarchy, "ifetch", prefix="if_", result="line_ready",
            pc="pc", addr="pc", time="fetch_cycle", indent=" " * 12)
        bind.update(b)
        load_block, b = emit_hit_inline(
            counts, hierarchy, "load", prefix="ld_", result="complete",
            pc="pc", addr="addr", time="start", indent=" " * 12)
        bind.update(b)
        store_block, b = emit_hit_inline(
            counts, hierarchy, "store", prefix="st_", result="store_done",
            pc="pc", addr="addr", time="commit", value="extra",
            indent=" " * 12)
        bind.update(b)
        # A sampler with a falsy interval never fires (the interpreted loop
        # maps it to the _NO_SAMPLE sentinel); omit the check entirely.
        sampling = sampler is not None and sampler.interval
        if sampling:
            bind["sampler_sample"] = sampler.sample
        checkpointing = bool(ckpt_every)
        if checkpointing:
            bind["ckpt_cut"] = ckpt_cut
        if resume is not None:
            bind["resume_state"] = resume

        lines = ["def run_loop(trace, measure_from):"]
        # Preamble: rebind every namespace object to a local once.
        lines += [f"    {name} = g_{name}" for name in bind]
        if resume is None:
            lines += [
                "    ruu = deque()",
                "    lsq = deque()",
                "    ruu_append = ruu.append",
                "    ruu_popleft = ruu.popleft",
                "    lsq_append = lsq.append",
                "    lsq_popleft = lsq.popleft",
                f"    ring = [0] * {_RING}",
                "    ring_pos = 0",
                "    fetch_cycle = 0",
                "    fetch_slots = 0",
                "    squash_until = 0",
                "    last_fetch_block = -1",
                "    commit_cycle = 0",
                "    commit_slots = 0",
                "    ruu_len = 0",
                "    lsq_len = 0",
                "    n_loads = 0",
                "    n_stores = 0",
                "    n_branches = 0",
                "    n_mispredicts = 0",
                "    load_latency_total = 0",
                "    warmup_end_cycle = 0",
                "    index = 0",
            ]
            if sampling:
                lines.append(f"    next_sample = {sampler.interval}")
            if checkpointing:
                lines.append(f"    next_ckpt = {ckpt_every}")
        else:
            index0 = resume[-1]
            lines += [
                "    (fetch_cycle, fetch_slots, squash_until,",
                "     last_fetch_block, ruu_init, lsq_init, ruu_len,",
                "     lsq_len, commit_cycle, commit_slots, ring_init,",
                "     ring_pos, n_loads, n_stores, n_branches,",
                "     n_mispredicts, load_latency_total, warmup_end_cycle,",
                "     index) = resume_state",
                "    ruu = deque(ruu_init)",
                "    lsq = deque(lsq_init)",
                "    ring = list(ring_init)",
                "    ruu_append = ruu.append",
                "    ruu_popleft = ruu.popleft",
                "    lsq_append = lsq.append",
                "    lsq_popleft = lsq.popleft",
                "    trace = trace[index:]",
            ]
            if sampling:
                interval = sampler.interval
                lines.append(
                    f"    next_sample = {((index0 // interval) + 1) * interval}")
            if checkpointing:
                lines.append(
                    f"    next_ckpt = {((index0 // ckpt_every) + 1) * ckpt_every}")
        lines += [
            "    for record in trace:",
            "        if index == measure_from:",
            "            warmup_end_cycle = commit_cycle",
            "        index += 1",
            "        op, pc, addr, dep, extra = record",
            "        if squash_until > fetch_cycle:",
            "            fetch_cycle = squash_until",
            "            fetch_slots = 0",
            f"        fetch_block = pc >> {hierarchy.l1i.line_bits}",
            "        if fetch_block != last_fetch_block:",
            "            last_fetch_block = fetch_block",
            *ifetch_block,
            "            if line_ready is None:",
            "                line_ready = h_fetch(pc, fetch_cycle)",
            "            if line_ready > fetch_cycle + 1:",
            "                fetch_cycle = line_ready - 1",
            "                fetch_slots = 0",
            f"        if fetch_slots >= {cfg.fetch_width}:",
            "            fetch_cycle += 1",
            "            fetch_slots = 0",
            "        fetch_slots += 1",
            "        dispatch = fetch_cycle + 1",
            f"        if ruu_len >= {cfg.ruu_size}:",
            "            oldest = ruu_popleft()",
            "            if oldest > dispatch:",
            "                dispatch = oldest",
            "        else:",
            "            ruu_len += 1",
            f"        is_mem = op == {load_op} or op == {store_op}",
            "        if is_mem:",
            f"            if lsq_len >= {cfg.lsq_size}:",
            "                oldest = lsq_popleft()",
            "                if oldest > dispatch:",
            "                    dispatch = oldest",
            "            else:",
            "                lsq_len += 1",
            "        ready = dispatch",
            f"        if dep and dep < {_RING}:",
            f"            producer = ring[(ring_pos - dep) & {_RING_MASK}]",
            "            if producer > ready:",
            "                ready = producer",
            # MultiPortResource.acquire inlined, as in the interpreted loop.
            "        res = fu_of[op]",
            "        ledger = res._ledger",
            "        floor = res._floor",
            "        start = ready if ready > floor else floor",
            "        count = ledger.get(start)",
            "        if count is None:",
            "            ledger[start] = 1",
            "        else:",
            "            n = res.n_ports",
            "            while count is not None and count >= n:",
            "                start += 1",
            "                count = ledger.get(start)",
            "            ledger[start] = 1 if count is None else count + 1",
            "        res.grants += 1",
            "        if len(ledger) > 8192:",
            "            res._prune(start)",
            f"        if op == {load_op}:",
            *load_block,
            "            if complete is None:",
            "                complete = h_load(pc, addr, start)",
            "            load_latency_total += complete - start",
            "            n_loads += 1",
            "        else:",
            "            complete = start + latency[op]",
            f"            if op == {store_op}:",
            "                n_stores += 1",
            f"            elif op == {branch_op}:",
            "                n_branches += 1",
            "                if extra:",
            "                    n_mispredicts += 1",
            "                    resolve = complete",
            f"                    if squash_until < resolve + {cfg.mispredict_penalty}:",
            f"                        squash_until = resolve + {cfg.mispredict_penalty}",
            "        commit = complete + 1",
            "        if commit > commit_cycle:",
            "            commit_cycle = commit",
            "            commit_slots = 1",
            "        else:",
            "            commit_slots += 1",
            f"            if commit_slots > {cfg.commit_width}:",
            "                commit_cycle += 1",
            "                commit_slots = 1",
            "            commit = commit_cycle",
            f"        if op == {store_op}:",
            *store_block,
            "            if store_done is None:",
            "                h_store(pc, addr, extra, commit)",
            "        ruu_append(commit)",
            "        if is_mem:",
            "            lsq_append(commit)",
            "        ring[ring_pos] = complete",
            f"        ring_pos = (ring_pos + 1) & {_RING_MASK}",
        ]
        if sampling:
            lines += [
                "        if index >= next_sample:",
                "            sampler_sample(index, commit_cycle)",
                f"            next_sample += {sampler.interval}",
            ]
        if checkpointing:
            lines += [
                "        if index >= next_ckpt:",
                "            ckpt_cut((fetch_cycle, fetch_slots,",
                "                      squash_until, last_fetch_block,",
                "                      list(ruu), list(lsq), ruu_len,",
                "                      lsq_len, commit_cycle, commit_slots,",
                "                      list(ring), ring_pos, n_loads,",
                "                      n_stores, n_branches, n_mispredicts,",
                "                      load_latency_total,",
                "                      warmup_end_cycle, index))",
                f"            next_ckpt += {ckpt_every}",
            ]
        lines += [
            "    return (index, commit_cycle, warmup_end_cycle, n_loads,",
            "            n_stores, n_branches, n_mispredicts,",
            "            load_latency_total)",
        ]
        return "\n".join(lines), bind

    def reset(self) -> None:
        for pool in self.fu.values():
            pool.reset()
