"""Disk cache for generated hot-loop code objects.

The fast path generates Python source per machine shape (baked constants,
inline replay blocks) and compiles it once per process.  That compile is
~3 ms — irrelevant for long sessions, but a measurable slice of a single
cold benchmark run, which is exactly what ``repro.obs record`` times.
Compiled code objects marshal cleanly, so they get the same treatment as
generated workloads (:mod:`repro.workloads.store`): one file per source
digest under ``$REPRO_CACHE_DIR/codegen`` (default
``~/.cache/repro/codegen``), written atomically, treated as a miss on any
decode error.

The digest covers the *source text*, the caller's emitter version, and
the interpreter's cache tag — marshal'd code objects are bytecode, valid
only for the interpreter version that produced them, and an emitter can
change what a binding name *means* without changing the source it emits,
so the version constant keeps an edited emitter from replaying a stale
code object written by an older one.  Set ``REPRO_CODE_CACHE=0`` to
disable the disk layer (the in-process memo stays).
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import tempfile
from pathlib import Path
from types import CodeType
from typing import Dict, Tuple

#: In-process memo: (emitter version, source text) -> compiled code object.
_MEMO: Dict[Tuple[int, str], CodeType] = {}


def enabled() -> bool:
    # simlint: allow[SIM203] cache location only; cannot affect results
    return os.environ.get("REPRO_CODE_CACHE", "1") != "0"


def cache_dir() -> Path:
    # simlint: allow[SIM203] cache location only; cannot affect results
    env = os.environ.get("REPRO_CACHE_DIR")
    root = Path(env).expanduser() if env else Path.home() / ".cache" / "repro"
    return root / "codegen"


def _path_for(source: str, version: int) -> Path:
    digest = hashlib.sha256(
        f"tag={sys.implementation.cache_tag};v={version};".encode()
        + source.encode()
    ).hexdigest()[:24]
    return cache_dir() / f"{digest}.code"


def load_or_compile(source: str, filename: str, *, version: int = 0) -> CodeType:
    """Return the compiled form of ``source``, memoised twice.

    In-process by (``version``, source text), and on disk by the digest of
    the same pair so a fresh process skips the compile.  ``filename`` is
    what tracebacks and profiles show for the generated code; ``version``
    is the caller's emitter-version constant (bump it whenever the emitter
    changes semantics without changing emitted text).
    """
    memo_key = (version, source)
    code = _MEMO.get(memo_key)
    if code is not None:
        return code
    path = None
    if enabled():
        path = _path_for(source, version)
        try:
            code = marshal.loads(path.read_bytes())
            if not isinstance(code, CodeType):
                code = None
        except (OSError, ValueError, EOFError, TypeError):
            code = None
        if code is not None:
            _MEMO[memo_key] = code
            return code
    code = compile(source, filename, "exec")
    _MEMO[memo_key] = code
    if path is not None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(marshal.dumps(code))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        # simlint: allow[SIM601] best-effort cache write; the compiled code in hand is the result
        except OSError:
            pass
    return code
