"""Machine configuration — Table 1 of the paper.

Every experiment in the paper runs on one "scaled up superscalar
implementation" whose parameters (reproduced here as defaults) were shared by
several of the original mechanism articles.  :func:`baseline_config` returns
that machine; experiments derive variants with :func:`dataclasses.replace`
(e.g. the infinite-MSHR configuration of Figure 9 or the constant-latency
memory of Figure 8).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size: int                       # bytes
    assoc: int                      # ways; 1 = direct-mapped
    line_size: int                  # bytes
    latency: int                    # access latency, cycles
    ports: int = 1
    mshr_entries: int = 8           # miss-status holding registers
    mshr_reads: int = 4             # secondary misses merged per MSHR
    writeback: bool = True
    allocate_on_write: bool = True

    @property
    def n_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)

    @property
    def n_lines(self) -> int:
        return self.size // self.line_size

    def __post_init__(self) -> None:
        if self.size % (self.line_size * self.assoc) != 0:
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"line {self.line_size} x assoc {self.assoc}"
            )
        n_sets = self.size // (self.line_size * self.assoc)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{self.name}: set count {n_sets} not a power of two")


@dataclass(frozen=True)
class BusConfig:
    """A point-to-point or shared bus; transfer time in CPU cycles."""

    name: str
    width_bytes: int
    cpu_cycles_per_transfer: int


@dataclass(frozen=True)
class SDRAMConfig:
    """SDRAM geometry and timing, in CPU cycles (2 GHz core).

    Field names follow Table 1 of the paper.  ``scale`` lets Figure 8 derive
    the "70-cycle average latency SDRAM" by shrinking all timings.
    """

    capacity: int = 2 << 30         # 2 GB
    banks: int = 4
    rows: int = 8192
    columns: int = 1024             # column width is the bus width
    ras_to_ras: int = 20            # delay between activates to distinct banks
    ras_active: int = 80            # tRAS: activate-to-precharge minimum
    ras_to_cas: int = 30            # tRCD: activate-to-read
    cas_latency: int = 30           # tCL
    ras_precharge: int = 30         # tRP
    ras_cycle: int = 110            # tRC: activate-to-activate, same bank
    queue_entries: int = 32         # controller queue

    def scaled(self, factor: float) -> "SDRAMConfig":
        """Return a copy with all timing parameters scaled by ``factor``."""
        scaled_fields: Dict[str, int] = {}
        for name in (
            "ras_to_ras",
            "ras_active",
            "ras_to_cas",
            "cas_latency",
            "ras_precharge",
            "ras_cycle",
        ):
            scaled_fields[name] = max(1, round(getattr(self, name) * factor))
        return dataclasses.replace(self, **scaled_fields)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 1, "Processor core")."""

    ruu_size: int = 128             # register update unit (instruction window)
    lsq_size: int = 128             # load/store queue
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    int_alu: int = 8
    int_mul: int = 3
    fp_alu: int = 6
    fp_mul: int = 2
    lsu: int = 4                    # load/store units
    mispredict_penalty: int = 3     # front-end refill after branch resolution


#: Memory-model selector values for :class:`MachineConfig`.
MEMORY_SDRAM = "sdram"
MEMORY_CONSTANT = "constant"
MEMORY_SDRAM_FAST = "sdram70"


@dataclass(frozen=True)
class MachineConfig:
    """The full simulated machine."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l1d", size=32 << 10, assoc=1, line_size=32, latency=1,
            ports=4, mshr_entries=8, mshr_reads=4,
        )
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l1i", size=32 << 10, assoc=4, line_size=32, latency=1,
            ports=1, mshr_entries=8, mshr_reads=4,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l2", size=1 << 20, assoc=4, line_size=64, latency=12,
            ports=1, mshr_entries=8, mshr_reads=4,
        )
    )
    #: 32-byte wide bus at core frequency: one L1 line per transfer.
    l1_l2_bus: BusConfig = field(
        default_factory=lambda: BusConfig("l1_l2", 32, 1)
    )
    #: 64-byte 400 MHz front-side bus: 2 GHz / 400 MHz = 5 CPU cycles/beat.
    memory_bus: BusConfig = field(
        default_factory=lambda: BusConfig("membus", 64, 5)
    )
    sdram: SDRAMConfig = field(default_factory=SDRAMConfig)
    #: DRAM address mapping: "permutation" (the retained conflict-reducing
    #: scheme) or "linear" — an ablation knob, see benchmarks/.
    dram_interleave: str = "permutation"
    #: DRAM row-buffer policy: "open" (Table 1 behaviour) or "closed".
    dram_page_policy: str = "open"
    memory_model: str = MEMORY_SDRAM
    constant_memory_latency: int = 70
    #: When False the caches behave like SimpleScalar's: infinite MSHRs, no
    #: pipeline stalls, refills do not consume ports (Figures 1 and 9).
    precise_cache: bool = True
    infinite_mshr: bool = False
    #: When True (default), prefetches wait for memory-controller headroom
    #: before issuing — the paper's "until the bus is idle" policy.  An
    #: ablation knob: False lets prefetchers contend without restraint.
    prefetch_throttle: bool = True

    def with_memory_model(self, model: str) -> "MachineConfig":
        if model not in (MEMORY_SDRAM, MEMORY_CONSTANT, MEMORY_SDRAM_FAST):
            raise ValueError(f"unknown memory model {model!r}")
        return dataclasses.replace(self, memory_model=model)

    def with_infinite_mshr(self) -> "MachineConfig":
        return dataclasses.replace(self, infinite_mshr=True)

    def with_simplescalar_cache(self) -> "MachineConfig":
        """The imprecise cache model used for the Figure 1 comparison."""
        return dataclasses.replace(self, precise_cache=False, infinite_mshr=True)


def baseline_config() -> MachineConfig:
    """The Table 1 machine: every experiment's point of departure."""
    return MachineConfig()


#: The "scaled-down" SDRAM whose average latency approximates the 70-cycle
#: constant model (Figure 8): the paper reduced CAS latency 6 -> 2 memory
#: cycles, i.e. roughly a 1/3 scaling of the access components.
def sdram70_config() -> SDRAMConfig:
    return SDRAMConfig().scaled(1 / 3)
