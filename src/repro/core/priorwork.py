"""Table 5 — which mechanism the original articles compared against.

"Few articles have quantitative comparisons with (one or two) previous
mechanisms, except when comparisons are almost compulsory" (Section 3.1).
Kept as data so the harness can render the table and tests can cross-check
it against the mechanism catalogue.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: mechanism -> mechanisms its article quantitatively compared against.
PREVIOUS_COMPARISONS: Dict[str, Tuple[str, ...]] = {
    "DBCP": ("Markov",),
    "TK": ("DBCP",),
    "TCP": ("DBCP",),
    "TKVC": ("VC",),
    "CDP": ("SP",),
    "CDPSP": ("SP",),
    "GHB": ("SP",),
}


def comparison_pairs() -> Tuple[Tuple[str, str], ...]:
    """Flat (newer, older) pairs in the paper's listing order."""
    pairs = []
    for newer, olders in PREVIOUS_COMPARISONS.items():
        for older in olders:
            pairs.append((newer, older))
    return tuple(pairs)
