"""The comparison engine: sweep mechanisms x benchmarks into a ResultSet.

This is MicroLib's *raison d'être*: with every mechanism implemented
against the same machine, a fair quantitative comparison is one loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, baseline_config
from repro.core.results import ResultSet
from repro.core.simulation import DEFAULT_INSTRUCTIONS, run_benchmark
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE
from repro.workloads.registry import ALL_BENCHMARKS

ProgressFn = Callable[[str, str], None]


class ComparisonSuite:
    """Configure once, run a full mechanism x benchmark sweep.

    ``mechanism_kwargs`` maps a mechanism name to variant keyword
    arguments, so a suite can compare e.g. the *initial* and *fixed* DBCP
    builds by using two suites, or TCP with a 1-entry prefetch queue.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        benchmarks: Sequence[str] = ALL_BENCHMARKS,
        mechanisms: Sequence[str] = ALL_MECHANISMS,
        n_instructions: int = DEFAULT_INSTRUCTIONS,
        mechanism_kwargs: Optional[Dict[str, Dict]] = None,
        trace_window: Optional[Tuple[int, int]] = None,
    ):
        self.config = config or baseline_config()
        self.benchmarks = list(benchmarks)
        self.mechanisms = list(mechanisms)
        if BASELINE not in self.mechanisms:
            self.mechanisms.insert(0, BASELINE)
        self.n_instructions = n_instructions
        self.mechanism_kwargs = dict(mechanism_kwargs or {})
        self.trace_window = trace_window

    def run(self, progress: Optional[ProgressFn] = None) -> ResultSet:
        """Execute every (mechanism, benchmark) pair; return the grid."""
        results = ResultSet()
        for mechanism in self.mechanisms:
            for benchmark in self.benchmarks:
                if progress is not None:
                    progress(mechanism, benchmark)
                results.add(
                    run_benchmark(
                        benchmark,
                        mechanism,
                        config=self.config,
                        n_instructions=self.n_instructions,
                        mechanism_kwargs=self.mechanism_kwargs.get(mechanism),
                        trace_window=self.trace_window,
                    )
                )
        return results
