"""Result containers for mechanism x benchmark sweeps."""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.simulation import RunResult
from repro.mechanisms.registry import BASELINE

if TYPE_CHECKING:  # deferred at runtime: repro.exec imports this module
    from repro.exec.policy import FailedRun


class ResultSet:
    """A grid of :class:`RunResult` keyed by (mechanism, benchmark).

    The baseline must be present for speedup queries.  Iteration orders
    follow insertion order of :meth:`add`, so sweeps built in paper order
    render in paper order.

    A grid may carry **holes**: cells whose spec exhausted every attempt
    under a lenient retry policy arrive as
    :class:`~repro.exec.policy.FailedRun` records via
    :meth:`add_failure`.  Holes are not results — :meth:`get` still
    raises for them (with the failure attached to the message) — but
    they are enumerable (:attr:`failures`, :meth:`failure_for`) so
    tables and reports can render the missing cells explicitly, and
    :meth:`dense` yields the largest hole-free sub-grid for analytics
    that need complete rows.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple[str, str], RunResult] = {}
        self._failures: Dict[Tuple[str, str], "FailedRun"] = {}
        self._mechanisms: List[str] = []
        self._benchmarks: List[str] = []

    # -- construction -------------------------------------------------------------

    def add(self, result: RunResult) -> None:
        key = (result.mechanism, result.benchmark)
        if key in self._results:
            raise ValueError(f"duplicate result for {key}")
        if key in self._failures:
            raise ValueError(f"cell {key} already recorded as failed")
        self._results[key] = result
        self._note_axes(result.mechanism, result.benchmark)

    def add_failure(self, failure: "FailedRun") -> None:
        """Record a cell whose spec failed every attempt.

        The cell keeps its place on both axes so renderers can show the
        hole where the number should have been.
        """
        key = (failure.mechanism, failure.benchmark)
        if key in self._results:
            raise ValueError(f"cell {key} already has a result")
        if key in self._failures:
            raise ValueError(f"duplicate failure for {key}")
        self._failures[key] = failure
        self._note_axes(failure.mechanism, failure.benchmark)

    def _note_axes(self, mechanism: str, benchmark: str) -> None:
        if mechanism not in self._mechanisms:
            self._mechanisms.append(mechanism)
        if benchmark not in self._benchmarks:
            self._benchmarks.append(benchmark)

    # -- access --------------------------------------------------------------------

    @property
    def mechanisms(self) -> List[str]:
        return list(self._mechanisms)

    @property
    def benchmarks(self) -> List[str]:
        return list(self._benchmarks)

    def get(self, mechanism: str, benchmark: str) -> RunResult:
        try:
            return self._results[(mechanism, benchmark)]
        except KeyError:
            failure = self._failures.get((mechanism, benchmark))
            if failure is not None:
                raise KeyError(
                    f"no result for ({mechanism}, {benchmark}): "
                    f"{failure.summary()}"
                ) from None
            raise KeyError(f"no result for ({mechanism}, {benchmark})") from None

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    # -- failure accounting ---------------------------------------------------------

    @property
    def failures(self) -> List["FailedRun"]:
        """Every hole in the grid, in insertion order."""
        return list(self._failures.values())

    @property
    def complete(self) -> bool:
        """True when the grid has no failed cells."""
        return not self._failures

    def failure_for(self, mechanism: str, benchmark: str) -> Optional["FailedRun"]:
        """The failure occupying a cell, or None if it holds a result."""
        return self._failures.get((mechanism, benchmark))

    def incomplete_benchmarks(self) -> List[str]:
        """Benchmarks with at least one failed cell, in axis order."""
        holed = {benchmark for (_m, benchmark) in self._failures}
        return [b for b in self._benchmarks if b in holed]

    def dense(self) -> "ResultSet":
        """The largest hole-free sub-grid: benchmarks with no failed cell.

        Analytics that aggregate across a whole benchmark column (mean
        speedups, rankings, sensitivity sweeps) use this so one failed
        cell degrades one benchmark, not the whole analysis.
        """
        holed = {benchmark for (_m, benchmark) in self._failures}
        return self.subset(b for b in self._benchmarks if b not in holed)

    def ipc(self, mechanism: str, benchmark: str) -> float:
        return self.get(mechanism, benchmark).ipc

    def speedup(self, mechanism: str, benchmark: str) -> float:
        """IPC speedup of ``mechanism`` over the baseline on ``benchmark``."""
        base = self.get(BASELINE, benchmark)
        return self.get(mechanism, benchmark).speedup_over(base)

    def mean_speedup(
        self, mechanism: str, benchmarks: Optional[Sequence[str]] = None
    ) -> float:
        """Arithmetic-mean speedup over ``benchmarks`` (default: all)."""
        names = list(benchmarks) if benchmarks is not None else self._benchmarks
        if not names:
            raise ValueError("empty benchmark selection")
        return sum(self.speedup(mechanism, b) for b in names) / len(names)

    def speedup_row(self, mechanism: str) -> Dict[str, float]:
        """Per-benchmark speedups for one mechanism."""
        return {b: self.speedup(mechanism, b) for b in self._benchmarks}

    # -- persistence -----------------------------------------------------------------

    def to_json(self) -> str:
        payload = []
        for result in self._results.values():
            row = asdict(result)
            row.pop("stats", None)  # detailed stats stay in memory only
            payload.append(row)
        doc: Dict[str, object] = {"results": payload}
        if self._failures:
            doc["failures"] = [f.describe() for f in self._failures.values()]
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        data = json.loads(text)
        result_set = cls()
        for row in data["results"]:
            result_set.add(RunResult(**row))
        if data.get("failures"):
            # Imported here: repro.exec imports this module at package init.
            from repro.exec.policy import FailedRun

            for row in data["failures"]:
                result_set.add_failure(FailedRun.from_dict(row))
        return result_set

    # -- bulk helpers ----------------------------------------------------------------

    def subset(self, benchmarks: Iterable[str]) -> "ResultSet":
        """A new ResultSet restricted to ``benchmarks`` (holes included)."""
        wanted = set(benchmarks)
        out = ResultSet()
        for (mechanism, benchmark), result in self._results.items():
            if benchmark in wanted:
                out.add(result)
        for (mechanism, benchmark), failure in self._failures.items():
            if benchmark in wanted:
                out.add_failure(failure)
        return out
