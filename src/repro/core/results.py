"""Result containers for mechanism x benchmark sweeps."""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.simulation import RunResult
from repro.mechanisms.registry import BASELINE


class ResultSet:
    """A grid of :class:`RunResult` keyed by (mechanism, benchmark).

    The baseline must be present for speedup queries.  Iteration orders
    follow insertion order of :meth:`add`, so sweeps built in paper order
    render in paper order.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple[str, str], RunResult] = {}
        self._mechanisms: List[str] = []
        self._benchmarks: List[str] = []

    # -- construction -------------------------------------------------------------

    def add(self, result: RunResult) -> None:
        key = (result.mechanism, result.benchmark)
        if key in self._results:
            raise ValueError(f"duplicate result for {key}")
        self._results[key] = result
        if result.mechanism not in self._mechanisms:
            self._mechanisms.append(result.mechanism)
        if result.benchmark not in self._benchmarks:
            self._benchmarks.append(result.benchmark)

    # -- access --------------------------------------------------------------------

    @property
    def mechanisms(self) -> List[str]:
        return list(self._mechanisms)

    @property
    def benchmarks(self) -> List[str]:
        return list(self._benchmarks)

    def get(self, mechanism: str, benchmark: str) -> RunResult:
        try:
            return self._results[(mechanism, benchmark)]
        except KeyError:
            raise KeyError(f"no result for ({mechanism}, {benchmark})") from None

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def ipc(self, mechanism: str, benchmark: str) -> float:
        return self.get(mechanism, benchmark).ipc

    def speedup(self, mechanism: str, benchmark: str) -> float:
        """IPC speedup of ``mechanism`` over the baseline on ``benchmark``."""
        base = self.get(BASELINE, benchmark)
        return self.get(mechanism, benchmark).speedup_over(base)

    def mean_speedup(
        self, mechanism: str, benchmarks: Optional[Sequence[str]] = None
    ) -> float:
        """Arithmetic-mean speedup over ``benchmarks`` (default: all)."""
        names = list(benchmarks) if benchmarks is not None else self._benchmarks
        if not names:
            raise ValueError("empty benchmark selection")
        return sum(self.speedup(mechanism, b) for b in names) / len(names)

    def speedup_row(self, mechanism: str) -> Dict[str, float]:
        """Per-benchmark speedups for one mechanism."""
        return {b: self.speedup(mechanism, b) for b in self._benchmarks}

    # -- persistence -----------------------------------------------------------------

    def to_json(self) -> str:
        payload = []
        for result in self._results.values():
            row = asdict(result)
            row.pop("stats", None)  # detailed stats stay in memory only
            payload.append(row)
        return json.dumps({"results": payload}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        data = json.loads(text)
        result_set = cls()
        for row in data["results"]:
            result_set.add(RunResult(**row))
        return result_set

    # -- bulk helpers ----------------------------------------------------------------

    def subset(self, benchmarks: Iterable[str]) -> "ResultSet":
        """A new ResultSet restricted to ``benchmarks``."""
        wanted = set(benchmarks)
        out = ResultSet()
        for (mechanism, benchmark), result in self._results.items():
            if benchmark in wanted:
                out.add(result)
        return out
