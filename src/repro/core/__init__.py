"""MicroLib core: configuration, simulation driver, comparison engine.

This package is the paper's primary contribution rendered as a library:

* :mod:`repro.core.config` — the Table 1 machine and its variants;
* :mod:`repro.core.simulation` — build a machine, attach a mechanism, run a
  benchmark trace, return IPC and detailed statistics;
* :mod:`repro.core.comparison` — sweep mechanisms x benchmarks into a
  result matrix (the substrate of every figure);
* :mod:`repro.core.selection` — rankings and the benchmark-subset winner
  search (Tables 6 and 7);
* :mod:`repro.core.sensitivity` — per-benchmark sensitivity analysis
  (Figures 6 and 7);
* :mod:`repro.core.results` — serialisable result sets;
* :mod:`repro.core.priorwork` — who compared against whom (Table 5).
"""

from repro.core.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MEMORY_CONSTANT,
    MEMORY_SDRAM,
    MEMORY_SDRAM_FAST,
    SDRAMConfig,
    baseline_config,
)
from repro.core.simulation import RunResult, build_machine, run_benchmark
from repro.core.comparison import ComparisonSuite
from repro.core.results import ResultSet
from repro.core.selection import (
    rank_mechanisms,
    ranking_table,
    winners_by_subset_size,
)
from repro.core.sensitivity import benchmark_sensitivity, sensitivity_split

__all__ = [
    "BusConfig",
    "CacheConfig",
    "ComparisonSuite",
    "CoreConfig",
    "MEMORY_CONSTANT",
    "MEMORY_SDRAM",
    "MEMORY_SDRAM_FAST",
    "MachineConfig",
    "ResultSet",
    "RunResult",
    "SDRAMConfig",
    "baseline_config",
    "benchmark_sensitivity",
    "build_machine",
    "rank_mechanisms",
    "ranking_table",
    "run_benchmark",
    "sensitivity_split",
    "winners_by_subset_size",
]
