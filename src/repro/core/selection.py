"""Rankings and the benchmark-selection experiments (Tables 6 and 7).

The paper's Section 3.2 asks: *what is the effect of benchmark selection on
ranking?*  Two analyses answer it:

* :func:`ranking_table` — the Table 7 view: full rankings under different
  benchmark selections (all 26, the DBCP article's, the GHB article's).
* :func:`winners_by_subset_size` — the Table 6 view: for each mechanism
  and each subset size N, does *some* N-benchmark selection make that
  mechanism the overall winner?  Exhaustive search over C(26, N) subsets
  is infeasible, so we use the paper-faithful heuristic below; it proves
  only "yes" answers (a concrete witness subset is found), so the counts
  are lower bounds, exactly like a cherry-picking adversary would find.

Winner search heuristic
-----------------------
Mechanism *m* wins subset *S* when its mean speedup over *S* beats every
other mechanism's.  For each competitor *k*, the per-benchmark margin
``s_m(b) - s_k(b)`` must sum positive over *S*.  We greedily take the N
benchmarks with the best *worst-case* margins, then repair: while some
competitor still wins, re-rank benchmarks by the margin against the
binding competitor blended with the worst-case margin.  A few rounds of
this finds witnesses for every case the paper's table shape needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import ResultSet


def rank_mechanisms(
    results: ResultSet, benchmarks: Optional[Sequence[str]] = None
) -> List[Tuple[str, float]]:
    """Mechanisms with mean speedups, best first (ties keep paper order)."""
    names = results.mechanisms
    scored = [(m, results.mean_speedup(m, benchmarks)) for m in names]
    return sorted(scored, key=lambda pair: -pair[1])


def ranking_positions(
    results: ResultSet, benchmarks: Optional[Sequence[str]] = None
) -> Dict[str, int]:
    """Mechanism -> 1-based rank (Table 7 row format)."""
    ranked = rank_mechanisms(results, benchmarks)
    return {name: position + 1 for position, (name, _) in enumerate(ranked)}

def ranking_table(
    results: ResultSet, selections: Dict[str, Sequence[str]]
) -> Dict[str, Dict[str, int]]:
    """Table 7: selection label -> (mechanism -> rank)."""
    return {
        label: ranking_positions(results, benchmarks)
        for label, benchmarks in selections.items()
    }


def _margins(
    results: ResultSet, mechanism: str
) -> Tuple[List[str], Dict[str, Dict[str, float]]]:
    """Per-benchmark speedup margins of ``mechanism`` over each competitor."""
    benchmarks = results.benchmarks
    margins: Dict[str, Dict[str, float]] = {}
    own = {b: results.speedup(mechanism, b) for b in benchmarks}
    for competitor in results.mechanisms:
        if competitor == mechanism:
            continue
        margins[competitor] = {
            b: own[b] - results.speedup(competitor, b) for b in benchmarks
        }
    return benchmarks, margins


def _wins(
    subset: Sequence[str], margins: Dict[str, Dict[str, float]]
) -> Optional[str]:
    """None when the subset is a win; else the binding competitor."""
    worst_name = None
    worst_total = 0.0
    for competitor, row in margins.items():
        total = sum(row[b] for b in subset)
        if total <= 0 and (worst_name is None or total < worst_total):
            worst_name = competitor
            worst_total = total
    return worst_name


def find_winning_subset(
    results: ResultSet, mechanism: str, size: int, repair_rounds: int = 24
) -> Optional[List[str]]:
    """A ``size``-benchmark subset where ``mechanism`` wins, or ``None``."""
    benchmarks, margins = _margins(results, mechanism)
    if size > len(benchmarks):
        raise ValueError(f"subset size {size} exceeds {len(benchmarks)} benchmarks")
    if not margins:
        return list(benchmarks[:size])

    def worst_margin(benchmark: str) -> float:
        return min(row[benchmark] for row in margins.values())

    # Start from the benchmarks with the best worst-case margins.
    order = sorted(benchmarks, key=worst_margin, reverse=True)
    subset = order[:size]
    blend = 1.0
    for _ in range(repair_rounds):
        binding = _wins(subset, margins)
        if binding is None:
            return sorted(subset)
        binding_row = margins[binding]

        def score(benchmark: str) -> float:
            return binding_row[benchmark] + blend * worst_margin(benchmark)

        order = sorted(benchmarks, key=score, reverse=True)
        subset = order[:size]
        blend *= 0.6  # progressively focus on the binding competitor
    binding = _wins(subset, margins)
    return sorted(subset) if binding is None else None


def winners_by_subset_size(
    results: ResultSet, sizes: Optional[Sequence[int]] = None
) -> Dict[int, Dict[str, bool]]:
    """Table 6: size -> (mechanism -> can it win some subset of that size?)."""
    n = len(results.benchmarks)
    size_list = list(sizes) if sizes is not None else list(range(1, n + 1))
    table: Dict[int, Dict[str, bool]] = {}
    for size in size_list:
        row = {}
        for mechanism in results.mechanisms:
            row[mechanism] = (
                find_winning_subset(results, mechanism, size) is not None
            )
        table[size] = row
    return table


def count_possible_winners(table: Dict[int, Dict[str, bool]]) -> Dict[int, int]:
    """How many distinct mechanisms can win at each subset size."""
    return {size: sum(row.values()) for size, row in table.items()}
