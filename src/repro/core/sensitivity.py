"""Benchmark-sensitivity analysis (Figures 6 and 7).

"The benchmark sensitivity to mechanisms varies greatly" (Section 3.2):
some benchmarks barely react to any data-cache optimization while others
dominate every average.  Sensitivity of a benchmark is measured as the
spread (max - min) of the speedups all mechanisms achieve on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import ResultSet
from repro.mechanisms.registry import BASELINE


def benchmark_sensitivity(
    results: ResultSet, mechanisms: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Benchmark -> speedup spread across mechanisms (Figure 6)."""
    names = [
        m for m in (mechanisms if mechanisms is not None else results.mechanisms)
        if m != BASELINE
    ]
    if not names:
        raise ValueError("need at least one non-baseline mechanism")
    sensitivity = {}
    for benchmark in results.benchmarks:
        speedups = [results.speedup(m, benchmark) for m in names]
        sensitivity[benchmark] = max(speedups) - min(speedups)
    return sensitivity


def sensitivity_split(
    results: ResultSet, k: int = 6
) -> Tuple[List[str], List[str]]:
    """The ``k`` most and least sensitive benchmarks (Figure 7's subsets)."""
    sensitivity = benchmark_sensitivity(results)
    ordered = sorted(sensitivity, key=sensitivity.get, reverse=True)
    if k * 2 > len(ordered):
        raise ValueError(f"k={k} too large for {len(ordered)} benchmarks")
    return ordered[:k], ordered[-k:]


def subset_speedups(
    results: ResultSet, subsets: Dict[str, Sequence[str]]
) -> Dict[str, Dict[str, float]]:
    """Figure 7 rows: subset label -> (mechanism -> mean speedup)."""
    table: Dict[str, Dict[str, float]] = {}
    for label, benchmarks in subsets.items():
        table[label] = {
            mechanism: results.mean_speedup(mechanism, benchmarks)
            for mechanism in results.mechanisms
        }
    return table
