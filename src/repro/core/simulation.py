"""Build a machine, run one benchmark under one mechanism, report results.

This is the library's front door::

    from repro.core import baseline_config, run_benchmark
    result = run_benchmark("swim", "GHB", n_instructions=20_000)
    print(result.ipc)

Every figure and table in the paper reduces to grids of these runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import MachineConfig, baseline_config
from repro.cpu.ooo import CoreStats, OoOCore
from repro.mechanisms.base import Mechanism
from repro.mechanisms.registry import create
from repro.obs.sampling import maybe_sampler
from repro.obs.tracing import TRACER
from repro.workloads.registry import build as build_workload

#: Default trace length: scaled from the paper's 500M-instruction SimPoint
#: traces to what cycle-level pure-Python simulation sustains (DESIGN.md).
DEFAULT_INSTRUCTIONS = 30_000

#: Fraction of each trace treated as cache warm-up (IPC measured after it).
WARMUP_FRACTION = 0.2


@dataclass
class RunResult:
    """Everything a single simulation produced."""

    benchmark: str
    mechanism: str
    ipc: float
    cycles: int
    instructions: int
    l1_miss_rate: float
    l2_miss_rate: float
    avg_load_latency: float
    avg_memory_latency: float
    memory_accesses: float
    prefetches_issued: float
    useful_prefetches: float
    mechanism_table_accesses: float
    stats: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, base: "RunResult") -> float:
        """IPC speedup of this run over ``base`` (same benchmark)."""
        if self.benchmark != base.benchmark:
            raise ValueError(
                f"speedup across benchmarks: {self.benchmark} vs {base.benchmark}"
            )
        if base.ipc == 0:
            return 0.0
        return self.ipc / base.ipc


def build_machine(
    config: Optional[MachineConfig] = None,
    mechanism: Optional[Mechanism] = None,
    image=None,
) -> Tuple[OoOCore, MemoryHierarchy]:
    """Construct a core + hierarchy pair for ``config``."""
    config = config or baseline_config()
    hierarchy = MemoryHierarchy(config, mechanism=mechanism, image=image)
    core = OoOCore(config.core, hierarchy)
    return core, hierarchy


def run_trace(
    trace: Sequence,
    mechanism: Optional[Mechanism] = None,
    config: Optional[MachineConfig] = None,
    image=None,
    benchmark: str = "custom",
    mechanism_name: Optional[str] = None,
    warmup_fraction: float = WARMUP_FRACTION,
    fast: bool = True,
    checkpoint=None,
) -> RunResult:
    """Run an explicit trace on a fresh machine; return a :class:`RunResult`.

    ``fast=False`` disables the trace-speculation fast path
    (:mod:`repro.cpu.fastpath`); results are bit-identical either way —
    the knob exists so that equivalence stays testable.

    ``checkpoint`` is an optional mid-run checkpointer (see
    :class:`repro.exec.checkpoint.Checkpointer`), forwarded to
    :meth:`OoOCore.run <repro.cpu.ooo.OoOCore.run>`.  It never enters a
    run's identity: a resumed run's result is bit-identical to an
    uninterrupted one, so the content-addressed store cannot tell them
    apart (and must not).
    """
    name = mechanism_name or _name_of(mechanism)
    tracing = TRACER.enabled
    if tracing:
        TRACER.begin("sim.run_trace", cat="sim",
                     benchmark=benchmark, mechanism=name)
    core, hierarchy = build_machine(config, mechanism, image)
    measure_from = int(len(trace) * warmup_fraction)
    sampler = maybe_sampler(hierarchy, len(trace),
                            benchmark=benchmark, mechanism=name)
    stats: CoreStats = core.run(trace, measure_from=measure_from,
                                sampler=sampler, fast=fast,
                                checkpoint=checkpoint)
    hierarchy.finalize_stats()
    hierarchy.sanitize_verify()  # no-op unless REPRO_SANITIZE=1
    result = _collect(benchmark, name, stats, hierarchy)
    if tracing:
        TRACER.end(ipc=round(result.ipc, 4), instructions=stats.instructions)
    return result


def run_benchmark(
    benchmark: str,
    mechanism_name: str = "Base",
    config: Optional[MachineConfig] = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    mechanism_kwargs: Optional[Dict] = None,
    trace_window: Optional[Tuple[int, int]] = None,
    fast: bool = True,
) -> RunResult:
    """Run one registry benchmark under one registry mechanism.

    ``trace_window=(skip, length)`` simulates only that slice of the
    generated trace — the paper's "skip N, simulate M" trace selection
    (the window is taken from a trace of at least ``skip + length``
    instructions).  ``fast`` is forwarded to :func:`run_trace`.
    """
    if trace_window is not None:
        skip, length = trace_window
        total = max(n_instructions, skip + length)
        trace, image = build_workload(benchmark, total)
        trace = trace[skip:skip + length]
    else:
        trace, image = build_workload(benchmark, n_instructions)
    mechanism = create(mechanism_name, **(mechanism_kwargs or {}))
    result = run_trace(
        trace, mechanism, config, image,
        benchmark=benchmark, mechanism_name=mechanism_name, fast=fast,
    )
    return result


def _name_of(mechanism: Optional[Mechanism]) -> str:
    return mechanism.ACRONYM if mechanism is not None else "Base"


def _collect(
    benchmark: str,
    mechanism_name: str,
    stats: CoreStats,
    hierarchy: MemoryHierarchy,
) -> RunResult:
    mech = hierarchy.mechanism
    table_accesses = 0.0
    if mech is not None:
        table_accesses = getattr(
            mech, "total_table_accesses", mech.st_table_accesses.value
        )
    memory = hierarchy.memory
    return RunResult(
        benchmark=benchmark,
        mechanism=mechanism_name,
        ipc=stats.ipc,
        cycles=stats.cycles,
        instructions=stats.instructions,
        l1_miss_rate=hierarchy.l1d.miss_rate,
        l2_miss_rate=hierarchy.l2.miss_rate,
        avg_load_latency=stats.avg_load_latency,
        avg_memory_latency=memory.average_latency,
        memory_accesses=memory.st_requests.value,
        prefetches_issued=hierarchy.st_prefetches_issued.value,
        useful_prefetches=(
            mech.useful_prefetches if mech is not None else 0.0
        ),
        mechanism_table_accesses=table_accesses,
        stats=hierarchy.stats_report(),
    )
