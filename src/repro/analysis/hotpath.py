"""SIM7xx — hot-path performance lint.

PR 6's speedup came from a handful of mechanical disciplines in the
per-record/per-event functions: hoist invariant attribute chains to
locals, keep allocation out of the loop body, enter no ``try``/``with``
frames per iteration, read dict entries once.  Nothing but convention
stops an ordinary refactor from quietly undoing them — the code still
passes every golden test, just slower.  These rules turn the discipline
into a checked contract over every function marked ``@hotpath``
(:mod:`repro.hotpath`).

The *hot scope* of a marked function is the body of every loop it
contains, or the whole body when it contains no loop (a loop-free marked
function — a kernel callback, ``Cache.access`` — is itself the
per-event unit).  SIM701 and SIM705 are inherently about loops and only
fire inside loop bodies; SIM702/703/704 apply to the whole hot scope.

* SIM701 ``unhoisted-chain`` — the same attribute chain read two or more
  times in one loop, with neither the chain nor its root assigned in
  that loop: evaluate it once into a local before the loop.
* SIM702 ``loop-allocation`` — a list/dict/set/tuple display, a
  comprehension, an f-string, or ``+`` on a list display in the hot
  scope; every iteration pays an allocator round trip.  Allocations
  inside ``raise`` statements are exempt (error paths are cold by
  definition).
* SIM703 ``per-iteration-frame`` — a ``try`` or ``with`` entered in the
  hot scope; move the frame outside the loop or justify the cost.
* SIM704 ``unhoisted-subscript`` — a constant-key subscript read
  repeatedly from a container the scope neither rebinds nor passes to a
  mutating call: read it once into a local.
* SIM705 ``self-call-in-loop`` — a call through ``self.`` in a loop
  body; bind the bound method (or the needed attribute) to a local
  before the loop, the way the generated fast path bakes it as a
  literal.

Deliberate costs carry an ``# simlint: allow[SIM70x] <reason>``; the
shipped tree lints at zero.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.contract import _rule
from repro.analysis.core import (
    SIM_PATH_PACKAGES,
    SourceModule,
    Violation,
    make_violation,
    rule,
)

_PACKAGES = SIM_PATH_PACKAGES

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = _FUNCTION_NODES + (ast.Lambda, ast.ClassDef)
_LOOP_NODES = (ast.For, ast.While)


def _is_hotpath_marked(fn: ast.AST) -> bool:
    for decorator in getattr(fn, "decorator_list", []):
        if isinstance(decorator, ast.Name) and decorator.id == "hotpath":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr == "hotpath":
            return True
    return False


def _hot_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES) and _is_hotpath_marked(node):
            yield node


def _scope_walk(nodes: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Walk ``nodes`` without descending into nested function/class defs."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SKIP_NODES):
                continue
            stack.append(child)


def _chain_text(node: ast.AST) -> Optional[str]:
    """Dotted text of an attribute chain rooted at a plain name, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and parts:
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _loop_scope(loop: ast.AST) -> List[ast.AST]:
    """The per-iteration nodes of one loop: its body, plus the test for
    ``while`` (re-evaluated every iteration; a ``for`` iterable is not)."""
    scope: List[ast.AST] = list(getattr(loop, "body", []))
    if isinstance(loop, ast.While):
        scope.append(loop.test)
    return scope


def _stored_texts(scope: Sequence[ast.AST]) -> Set[str]:
    """Names and attribute chains assigned anywhere in ``scope``.

    A chain that is (re)bound per iteration is not invariant, so neither
    it nor anything hanging off it is hoistable — SIM701/704 exempt them.
    """
    stored: Set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            stored.add(node.id)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            text = _chain_text(node)
            if text is not None:
                stored.add(text)
    return stored


def _is_exempt(text: str, stored: Set[str]) -> bool:
    """Whether ``text`` or any dotted prefix of it is rebound in scope."""
    parts = text.split(".")
    return any(".".join(parts[:i]) in stored for i in range(1, len(parts) + 1))


def _call_func_nodes(scope: Sequence[ast.AST]) -> Set[int]:
    """ids of nodes appearing as a call's function (SIM705's beat)."""
    funcs: Set[int] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Call):
            funcs.add(id(node.func))
    return funcs


def _call_arg_texts(scope: Sequence[ast.AST]) -> Set[str]:
    """Chains/names passed as call arguments in scope (possibly mutated)."""
    texts: Set[str] = set()
    for node in _scope_walk(scope):
        if not isinstance(node, ast.Call):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                texts.add(arg.id)
            else:
                text = _chain_text(arg)
                if text is not None:
                    texts.add(text)
    return texts


def _raise_subtree_ids(scope: Sequence[ast.AST]) -> Set[int]:
    """ids of every node inside a ``raise`` statement (cold error paths)."""
    inside: Set[int] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Raise):
            for inner in ast.walk(node):
                inside.add(id(inner))
    return inside


def _hot_scopes(fn: ast.AST) -> Tuple[List[ast.AST], List[ast.AST]]:
    """(loops, whole-scope nodes) for one marked function.

    The whole-scope list is the union of loop scopes when the function
    has loops, else the function body itself.
    """
    loops = [node for node in _scope_walk(getattr(fn, "body", []))
             if isinstance(node, _LOOP_NODES)]
    if loops:
        whole: List[ast.AST] = []
        for loop in loops:
            whole.extend(_loop_scope(loop))
        return loops, whole
    return loops, list(getattr(fn, "body", []))


@rule("SIM701", "unhoisted-chain", _PACKAGES,
      "in @hotpath loops, repeated invariant attribute chains must be "
      "hoisted to a local before the loop")
def check_unhoisted_chain(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found: List[Violation] = []
    for fn in _hot_functions(module.tree):
        loops, _ = _hot_scopes(fn)
        for loop in loops:
            scope = _loop_scope(loop)
            stored = _stored_texts(scope)
            call_funcs = _call_func_nodes(scope)
            # Maximal Load-context chains only: an Attribute that is
            # itself the .value of another Attribute is a prefix, and a
            # call's func is SIM705's beat, not a hoistable read.
            prefixes: Set[int] = set()
            for node in _scope_walk(scope):
                if isinstance(node, ast.Attribute):
                    if isinstance(node.value, ast.Attribute):
                        prefixes.add(id(node.value))
            occurrences: Dict[str, List[ast.Attribute]] = {}
            for node in _scope_walk(scope):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                if id(node) in prefixes or id(node) in call_funcs:
                    continue
                text = _chain_text(node)
                if text is None or _is_exempt(text, stored):
                    continue
                occurrences.setdefault(text, []).append(node)
            for text, nodes in sorted(occurrences.items()):
                if len(nodes) < 2:
                    continue
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                local = text.rsplit(".", 1)[-1]
                found.append(make_violation(
                    _rule("SIM701"), module, first,
                    f"attribute chain '{text}' is read {len(nodes)} times "
                    f"per iteration and never rebound in the loop; hoist "
                    f"it once before the loop ({local} = {text}) so each "
                    "iteration pays a local load, not repeated attribute "
                    "lookups",
                ))
    return found


@rule("SIM702", "loop-allocation", _PACKAGES,
      "the hot scope of a @hotpath function must not allocate: no "
      "displays, comprehensions, f-strings, or list concatenation")
def check_loop_allocation(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found: List[Violation] = []
    for fn in _hot_functions(module.tree):
        _, scope = _hot_scopes(fn)
        cold = _raise_subtree_ids(scope)
        for node in _scope_walk(scope):
            if id(node) in cold:
                continue
            what = None
            if isinstance(node, ast.List):
                what = "list display"
            elif isinstance(node, ast.Dict):
                what = "dict display"
            elif isinstance(node, ast.Set):
                what = "set display"
            elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
                what = "tuple display"
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                what = "comprehension"
            elif isinstance(node, ast.JoinedStr):
                what = "f-string"
            elif (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
                  and (isinstance(node.left, ast.List)
                       or isinstance(node.right, ast.List))):
                what = "list concatenation"
            if what is None:
                continue
            found.append(make_violation(
                _rule("SIM702"), module, node,
                f"{what} allocates in the hot scope; every record/event "
                "pays the allocator — build it once outside, reuse a "
                "preallocated structure, or justify the cost with an "
                "allow comment",
            ))
    return found


@rule("SIM703", "per-iteration-frame", _PACKAGES,
      "the hot scope of a @hotpath function must not enter try/with "
      "frames per iteration")
def check_per_iteration_frame(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found: List[Violation] = []
    for fn in _hot_functions(module.tree):
        _, scope = _hot_scopes(fn)
        for node in _scope_walk(scope):
            if isinstance(node, ast.Try):
                what = "try"
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                what = "with"
            else:
                continue
            found.append(make_violation(
                _rule("SIM703"), module, node,
                f"'{what}' entered in the hot scope sets up an exception "
                "frame per iteration; hoist it around the loop, restructure "
                "to a test, or justify the cost with an allow comment",
            ))
    return found


@rule("SIM704", "unhoisted-subscript", _PACKAGES,
      "in the hot scope of a @hotpath function, invariant constant-key "
      "subscripts must be read once into a local")
def check_unhoisted_subscript(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found: List[Violation] = []
    for fn in _hot_functions(module.tree):
        loops, _ = _hot_scopes(fn)
        scopes = [_loop_scope(loop) for loop in loops] if loops \
            else [list(getattr(fn, "body", []))]
        for scope in scopes:
            stored = _stored_texts(scope)
            mutated = _call_arg_texts(scope)
            occurrences: Dict[str, List[ast.Subscript]] = {}
            for node in _scope_walk(scope):
                if not isinstance(node, ast.Subscript):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                if not isinstance(node.slice, ast.Constant):
                    continue
                base = (node.value.id if isinstance(node.value, ast.Name)
                        else _chain_text(node.value))
                if base is None:
                    continue
                # A container the scope rebinds or hands to a call may
                # change between reads — the lookup is not invariant.
                if _is_exempt(base, stored) or base in mutated:
                    continue
                key = f"{base}[{node.slice.value!r}]"
                occurrences.setdefault(key, []).append(node)
            # In a loop every evaluation repeats per iteration: one read
            # is already hoistable.  Loop-free scopes run once, so only
            # a *repeated* identical lookup wastes anything.
            threshold = 1 if loops else 2
            for key, nodes in sorted(occurrences.items()):
                if len(nodes) < threshold:
                    continue
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                found.append(make_violation(
                    _rule("SIM704"), module, first,
                    f"constant-key subscript {key} is invariant in this "
                    "scope (container never rebound or passed to a call); "
                    "read it once into a local instead of re-indexing",
                ))
    return found


@rule("SIM705", "self-call-in-loop", _PACKAGES,
      "in @hotpath loops, calls through self. must be pre-bound to a "
      "local (the fast path bakes them as literals)")
def check_self_call_in_loop(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found: List[Violation] = []
    for fn in _hot_functions(module.tree):
        loops, _ = _hot_scopes(fn)
        for loop in loops:
            for node in _scope_walk(_loop_scope(loop)):
                if not isinstance(node, ast.Call):
                    continue
                text = _chain_text(node.func)
                if text is None or not text.startswith("self."):
                    continue
                bound = text.rsplit(".", 1)[-1]
                found.append(make_violation(
                    _rule("SIM705"), module, node,
                    f"call through '{text}' in a hot loop pays two "
                    "attribute lookups per iteration; bind the method "
                    f"once before the loop ({bound} = {text}) — the "
                    "generated fast path bakes exactly this binding as "
                    "a namespace literal",
                ))
    return found
