"""SIM2xx — determinism lint for the simulated path.

The RunSpec/Executor layer caches results by content hash: the same spec
must produce the same RunResult forever, on any machine, in any process.
Any nondeterminism on the simulated path poisons the content-addressed
store silently — a cached result is simply *wrong* and will be replayed
as truth.  These rules flag the classic sources before they run:

* SIM201 ``unseeded-rng`` — module-level ``random.*`` / ``np.random.*``
  calls and RNG constructors without an explicit seed.  Threading an
  explicitly seeded ``random.Random(seed)`` / ``RandomState(seed)``
  object through is the sanctioned pattern (see ``workloads/patterns.py``).
* SIM202 ``wall-clock`` — ``time.time``/``perf_counter``/``datetime.now``
  and friends; simulated time is the only clock the sim path may read.
* SIM203 ``env-read`` — ``os.environ``/``os.getenv`` inside sim-path
  packages; configuration must arrive through the RunSpec, never sideways
  through the process environment.
* SIM204 ``set-iteration`` — iterating a set (or passing one to
  ``list``/``tuple``): string hashes vary per process (PYTHONHASHSEED),
  so set order is the canonical cross-process nondeterminism.  Wrap in
  ``sorted(...)`` to fix.  Dict iteration is insertion-ordered in
  Python >= 3.7 and therefore deterministic; it is deliberately not
  flagged.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.analysis.core import (
    SIM_PATH_PACKAGES,
    SourceModule,
    Violation,
    make_violation,
    rule,
)
from repro.analysis.contract import _rule

#: Determinism also matters in the trace *generators*: workloads must
#: thread an explicit seeded RNG, not lean on the global ``random`` state.
_PACKAGES = SIM_PATH_PACKAGES + ("workloads",)

_RANDOM_MODULES = {"random"}
_NP_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "choice", "shuffle", "permutation",
    "random_sample", "uniform", "normal", "standard_normal", "seed",
}
_SEEDABLE_CTORS = {"Random", "RandomState", "default_rng", "Generator", "SystemRandom"}

_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "process_time"), ("time", "clock"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


def _dotted(node: ast.AST) -> List[str]:
    """['np', 'random', 'rand'] for ``np.random.rand``; [] when not dotted."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


@rule("SIM201", "unseeded-rng", _PACKAGES,
      "global-state or unseeded RNG use on the simulated path")
def check_unseeded_rng(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if not parts:
            continue
        # random.<fn>(...) on the module — shared global Mersenne state.
        if len(parts) == 2 and parts[0] in _RANDOM_MODULES:
            if parts[1] in _SEEDABLE_CTORS:
                if not node.args and not node.keywords:
                    found.append(make_violation(
                        _rule("SIM201"), module, node,
                        f"{'.'.join(parts)}() constructed without a seed; "
                        "pass an explicit seed so runs are reproducible",
                    ))
            else:
                found.append(make_violation(
                    _rule("SIM201"), module, node,
                    f"{'.'.join(parts)}() uses the process-global RNG; "
                    "thread an explicitly seeded random.Random through "
                    "instead",
                ))
        # np.random.<fn>(...) module-level (global state) or unseeded ctor.
        if len(parts) >= 3 and parts[-2] == "random":
            if parts[-1] in _NP_RANDOM_FNS:
                found.append(make_violation(
                    _rule("SIM201"), module, node,
                    f"{'.'.join(parts[-3:])}() uses numpy's global RNG; use "
                    "np.random.RandomState(seed) / default_rng(seed)",
                ))
            elif parts[-1] in _SEEDABLE_CTORS and not node.args and not node.keywords:
                found.append(make_violation(
                    _rule("SIM201"), module, node,
                    f"{'.'.join(parts[-3:])}() constructed without a seed",
                ))
    return found


@rule("SIM202", "wall-clock", SIM_PATH_PACKAGES,
      "wall-clock reads on the simulated path")
def check_wall_clock(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if len(parts) < 2:
            continue
        if (parts[-2], parts[-1]) in _CLOCK_CALLS:
            found.append(make_violation(
                _rule("SIM202"), module, node,
                f"{'.'.join(parts)}() reads the wall clock; simulated time "
                "(the cycle counter) is the only clock the sim path may use",
            ))
    return found


@rule("SIM203", "env-read", SIM_PATH_PACKAGES,
      "environment reads on the simulated path")
def check_env_read(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        parts: List[str] = []
        if isinstance(node, ast.Call):
            parts = _dotted(node.func)
        elif isinstance(node, ast.Subscript):
            parts = _dotted(node.value)
        elif isinstance(node, ast.Attribute):
            parts = _dotted(node)
        if len(parts) >= 2 and parts[-2] == "os" and parts[-1] in (
                "getenv", "environ"):
            found.append(make_violation(
                _rule("SIM203"), module, node,
                "environment read on the simulated path; configuration must "
                "arrive through the RunSpec so it is part of the content hash",
            ))
        elif len(parts) >= 2 and "environ" in parts[:-1] and isinstance(
                node, ast.Call):
            found.append(make_violation(
                _rule("SIM203"), module, node,
                "environment read on the simulated path; configuration must "
                "arrive through the RunSpec so it is part of the content hash",
            ))
    # Deduplicate nested matches (os.environ.get is a Call over an Attribute).
    unique = {}
    for violation in found:
        unique.setdefault((violation.path, violation.line), violation)
    return list(unique.values())


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@rule("SIM204", "set-iteration", SIM_PATH_PACKAGES,
      "iteration over a set (order varies with PYTHONHASHSEED)")
def check_set_iteration(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        iterable = None
        if isinstance(node, ast.For):
            iterable = node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterable = node.generators[0].iter
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "iter", "enumerate") and node.args:
                iterable = node.args[0]
        if iterable is not None and _is_set_expr(iterable):
            found.append(make_violation(
                _rule("SIM204"), module, node,
                "iterating a set: element order depends on PYTHONHASHSEED "
                "and poisons content-addressed results; use sorted(...)",
            ))
    return found
