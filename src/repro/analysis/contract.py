"""SIM1xx — mechanism-contract conformance.

The MicroLib thesis is that mechanisms are interchangeable behind the
small contract of :class:`repro.mechanisms.base.Mechanism`.  These rules
check, before any cycle is simulated, that every mechanism actually
speaks that contract:

* SIM101 ``bad-level`` — ``LEVEL`` must be the literal ``"l1"`` or ``"l2"``.
* SIM102 ``unknown-hook`` — a hook-shaped method (``on_*``, ``probe``)
  that the base contract does not define (usually a typo, which Python
  would silently never call).
* SIM103 ``hook-signature`` — an overridden hook whose positional
  parameter names differ from the base signature.
* SIM104 ``raw-queue-push`` — prefetches pushed straight into a queue
  instead of through ``emit_prefetch`` (skips the emission stat the
  power model reads).
* SIM105 ``undeclared-structure`` — a mechanism whose ``__init__`` builds
  container side tables but that never overrides ``structures()``, so the
  CACTI cost model prices the hardware at zero.
* SIM106 ``registry-mismatch`` — registry tables out of sync: a factory
  without catalogue info, or a listed acronym without a factory.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Rule,
    SourceModule,
    Violation,
    all_rules,
    make_violation,
    rule,
)

_PACKAGES = ("mechanisms",)

#: Hook methods of the base contract, with their positional parameter
#: names (excluding ``self``).  Kept as data so the signature rule has a
#: single source of truth; ``_base_hooks`` below prefers reading the real
#: ``mechanisms/base.py`` out of the scanned tree when it is present.
FALLBACK_HOOKS: Dict[str, Tuple[str, ...]] = {
    "probe": ("block", "time"),
    "on_access": ("pc", "block", "hit", "was_prefetched", "time"),
    "on_miss": ("pc", "block", "time"),
    "on_refill": ("block", "victim_block", "time", "prefetched"),
    "on_evict": ("block", "dirty", "live", "time"),
    "on_prefetch_fill": ("block", "depth", "time"),
}

#: Non-hook base methods a mechanism may legitimately override.
OVERRIDABLE = {
    "__init__", "attach", "deliver_prefetch", "iter_queues", "structures",
    "useful_prefetches",
}

_BASE_CLASS_NAMES = {"Mechanism"}


def _positional_names(args: ast.arguments) -> Tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs + args.args]
    return tuple(names[1:])  # drop self


def _base_hooks(modules: Sequence[SourceModule]) -> Dict[str, Tuple[str, ...]]:
    """Hook signatures from the scanned ``mechanisms/base.py``, else fallback."""
    for module in modules:
        if module.module != "mechanisms.base":
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "Mechanism":
                hooks = {}
                for item in node.body:
                    if (isinstance(item, ast.FunctionDef)
                            and item.name in FALLBACK_HOOKS):
                        hooks[item.name] = _positional_names(item.args)
                if hooks:
                    return hooks
    return FALLBACK_HOOKS


def _mechanism_classes(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[ast.ClassDef]:
    """Classes in ``module`` that (transitively, by name) subclass Mechanism."""
    known: Set[str] = set(_BASE_CLASS_NAMES)
    # Fixed point over every scanned module so cross-file bases resolve.
    grew = True
    class_bases: List[Tuple[str, Set[str]]] = []
    for mod in modules:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
                bases |= {b.attr for b in node.bases
                          if isinstance(b, ast.Attribute)}
                class_bases.append((node.name, bases))
    while grew:
        grew = False
        for name, bases in class_bases:
            if name not in known and bases & known:
                known.add(name)
                grew = True
    found = []
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name != "Mechanism":
            bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
            bases |= {b.attr for b in node.bases if isinstance(b, ast.Attribute)}
            if bases & known:
                found.append(node)
    return found


def _rule(rule_id: str) -> Rule:
    for registered in all_rules():
        if registered.rule_id == rule_id:
            return registered
    raise KeyError(rule_id)


@rule("SIM101", "bad-level", _PACKAGES,
      "Mechanism.LEVEL must be the literal 'l1' or 'l2'")
def check_level(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for cls in _mechanism_classes(module, modules):
        for item in cls.body:
            if not isinstance(item, ast.Assign):
                continue
            targets = [t.id for t in item.targets if isinstance(t, ast.Name)]
            if "LEVEL" not in targets:
                continue
            value = item.value
            ok = isinstance(value, ast.Constant) and value.value in ("l1", "l2")
            if not ok:
                found.append(make_violation(
                    _rule("SIM101"), module, item,
                    f"{cls.name}.LEVEL must be the literal 'l1' or 'l2' "
                    "(the hierarchy attaches by this value)",
                ))
    return found


@rule("SIM102", "unknown-hook", _PACKAGES,
      "hook-shaped method that the Mechanism contract does not define")
def check_unknown_hook(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    hooks = _base_hooks(modules)
    found = []
    for cls in _mechanism_classes(module, modules):
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            looks_like_hook = item.name.startswith("on_") or item.name == "probe"
            if looks_like_hook and item.name not in hooks:
                found.append(make_violation(
                    _rule("SIM102"), module, item,
                    f"{cls.name}.{item.name} looks like a contract hook but "
                    f"the base Mechanism defines none of that name — the "
                    f"hierarchy will silently never call it "
                    f"(known hooks: {', '.join(sorted(hooks))})",
                ))
    return found


@rule("SIM103", "hook-signature", _PACKAGES,
      "overridden hook whose positional parameters differ from the base")
def check_hook_signature(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    hooks = _base_hooks(modules)
    found = []
    for cls in _mechanism_classes(module, modules):
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef) or item.name not in hooks:
                continue
            got = _positional_names(item.args)
            want = hooks[item.name]
            if got != want:
                found.append(make_violation(
                    _rule("SIM103"), module, item,
                    f"{cls.name}.{item.name}({', '.join(got)}) does not match "
                    f"the contract signature ({', '.join(want)})",
                ))
    return found


@rule("SIM104", "raw-queue-push", _PACKAGES,
      "prefetch pushed directly into a queue instead of via emit_prefetch")
def check_raw_queue_push(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    if module.module == "mechanisms.base":
        return []  # emit_prefetch itself is the one sanctioned push site
    found = []
    for cls in _mechanism_classes(module, modules):
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (isinstance(fn, ast.Attribute) and fn.attr == "push"):
                continue
            # self.queue.push(...), self.<anything>.push(PrefetchRequest(...))
            is_queue_attr = (
                isinstance(fn.value, ast.Attribute)
                and "queue" in fn.value.attr
            )
            pushes_request = any(
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "PrefetchRequest"
                for arg in node.args
            )
            if is_queue_attr or pushes_request:
                found.append(make_violation(
                    _rule("SIM104"), module, node,
                    f"{cls.name} pushes into a prefetch queue directly; use "
                    "emit_prefetch so the emission stat and drop accounting "
                    "stay correct",
                ))
    return found


_CONTAINER_CALLS = {
    "dict", "OrderedDict", "defaultdict", "deque", "list", "set", "Counter",
}


@rule("SIM105", "undeclared-structure", _PACKAGES,
      "mechanism builds side tables but never declares StructureSpecs")
def check_undeclared_structure(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for cls in _mechanism_classes(module, modules):
        method_names = {
            item.name for item in cls.body if isinstance(item, ast.FunctionDef)
        }
        if "structures" in method_names:
            continue
        init = next(
            (item for item in cls.body
             if isinstance(item, ast.FunctionDef) and item.name == "__init__"),
            None,
        )
        if init is None:
            continue
        for node in ast.walk(init):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, (
                    ast.Call, ast.Dict, ast.List, ast.Set, ast.ListComp,
                    ast.DictComp))):
                continue
            targets_self = any(
                isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)
                and t.value.id == "self" for t in node.targets
            )
            if not targets_self:
                continue
            value = node.value
            is_container = isinstance(value, (
                ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp,
            )) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _CONTAINER_CALLS
            )
            if is_container:
                found.append(make_violation(
                    _rule("SIM105"), module, node,
                    f"{cls.name} allocates a side table here but defines no "
                    "structures() override — the CACTI cost model will price "
                    "this hardware at zero bytes",
                ))
                break  # one report per class is enough
    return found


def _literal_dict_keys(node: ast.AST) -> Optional[List[Tuple[str, int]]]:
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append((key.value, key.lineno))
    return keys


@rule("SIM106", "registry-mismatch", _PACKAGES,
      "mechanism registry tables (factories, info, listings) out of sync")
def check_registry(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    assignments: Dict[str, ast.AST] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assignments[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assignments[node.target.id] = node.value
    if "_FACTORIES" not in assignments or "_INFO" not in assignments:
        return []
    factories = _literal_dict_keys(assignments["_FACTORIES"]) or []
    info = _literal_dict_keys(assignments["_INFO"]) or []
    info_names = {name for name, _ in info}
    factory_names = {name for name, _ in factories}
    found = []
    for name, line in factories:
        if name not in info_names:
            found.append(make_violation(
                _rule("SIM106"), module, line,
                f"factory {name!r} has no _INFO catalogue entry",
            ))
    listed: List[Tuple[str, int]] = []
    for listing in ("ALL_MECHANISMS", "EXTENSIONS"):
        node = assignments.get(listing)
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                if isinstance(element, ast.Constant) and isinstance(
                        element.value, str):
                    listed.append((element.value, element.lineno))
    baseline = assignments.get("BASELINE")
    baseline_name = (
        baseline.value if isinstance(baseline, ast.Constant) else "Base"
    )
    for name, line in listed:
        if name != baseline_name and name not in factory_names:
            found.append(make_violation(
                _rule("SIM106"), module, line,
                f"listed mechanism {name!r} has no factory",
            ))
    return found
