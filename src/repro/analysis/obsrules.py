"""SIM5xx — observability wiring.

The obs subsystem (``repro.obs``) can only report what the simulator
actually exposes.  Two source-level defects silently degrade it:

* SIM501 ``orphan-stat`` — a :class:`~repro.kernel.module.StatCounter`
  constructed directly instead of through ``Component.add_stat``.  A
  direct construction never lands in ``Component.stats``, so
  ``stats_report()`` — and everything downstream of it: the metrics
  registry, interval sampling, the benchmark ledger — never sees it.
  The only sanctioned construction site is ``add_stat`` itself.
* SIM502 ``nonliteral-span-name`` — a tracer call (``begin`` /
  ``span`` / ``instant`` / ``counter``) whose name argument is not a
  string literal.  Dynamic span names explode the Perfetto track count,
  defeat cross-run trace diffing, and make the trace schema impossible
  to audit statically; put the varying part in the event ``args``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from repro.analysis.contract import _rule
from repro.analysis.core import SourceModule, Violation, make_violation, rule

_PACKAGES = ("",)  # whole tree

#: Tracer methods whose first argument names the emitted event.
_TRACER_METHODS = frozenset({"begin", "span", "instant", "counter"})

#: Receiver spellings that identify the tracing singleton or an injected
#: tracer handle (``TRACER.begin``, ``self.tracer.counter``, ...).
_TRACER_NAMES = frozenset({"TRACER", "tracer", "_tracer"})


def _enclosing_functions(tree: ast.AST) -> List[ast.AST]:
    return [node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _inside_add_stat(call: ast.Call, functions: Sequence[ast.AST]) -> bool:
    """Whether ``call`` sits inside a function named ``add_stat``."""
    for fn in functions:
        if getattr(fn, "name", None) != "add_stat":
            continue
        for node in ast.walk(fn):
            if node is call:
                return True
    return False


@rule("SIM501", "orphan-stat", _PACKAGES,
      "a StatCounter constructed outside Component.add_stat never "
      "reaches stats_report()")
def check_orphan_stat(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    functions = _enclosing_functions(module.tree)
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name != "StatCounter":
            continue
        if _inside_add_stat(node, functions):
            continue
        found.append(make_violation(
            _rule("SIM501"), module, node,
            "StatCounter constructed directly; it will never appear in "
            "stats_report() or any obs metric/ledger record — register it "
            "with self.add_stat(...) instead",
        ))
    return found


def _tracer_receiver(fn: ast.Attribute) -> Optional[str]:
    """The tracer-ish receiver name of ``<recv>.<method>(...)``, if any."""
    receiver = fn.value
    if isinstance(receiver, ast.Name) and receiver.id in _TRACER_NAMES:
        return receiver.id
    if isinstance(receiver, ast.Attribute) and receiver.attr in _TRACER_NAMES:
        return receiver.attr
    return None


@rule("SIM502", "nonliteral-span-name", _PACKAGES,
      "tracer span/event names must be string literals")
def check_nonliteral_span_name(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and fn.attr in _TRACER_METHODS):
            continue
        receiver = _tracer_receiver(fn)
        if receiver is None:
            continue
        if not node.args:
            continue  # name passed by keyword or missing: runtime's problem
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            continue
        found.append(make_violation(
            _rule("SIM502"), module, node,
            f"{receiver}.{fn.attr}(...) with a non-literal event name; "
            "dynamic names explode the trace's track count and defeat "
            "cross-run diffing — use a literal name and put the varying "
            "part in the event args",
        ))
    return found
