"""SIM3xx — RunSpec purity.

A RunSpec *is* the run: its content hash is the identity the executor
dedupes on and the on-disk store files results under.  That only works
if the spec is deeply immutable and every field participates in the
hash.  A field that is mutable can drift after hashing; a field that is
skipped by ``describe()`` makes two different runs collide on one hash —
the exact label-collision bug the exec layer was built to kill.

* SIM301 ``mutable-spec`` — a ``@dataclass`` in a spec/config module
  that is not ``frozen=True``.
* SIM302 ``hash-omission`` — a ``RunSpec`` field that ``describe()``
  never serialises (so it is invisible to the content hash).
* SIM303 ``unhashable-field`` — a spec field annotated with a mutable
  container type (``List``/``Dict``/``Set``/bare ``list``...); use
  tuples and frozen dataclasses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.analysis.core import SourceModule, Violation, make_violation, rule
from repro.analysis.contract import _rule

#: Modules whose dataclasses define run identity and must be frozen.
_PACKAGES = ("exec.runspec", "core.config")

_MUTABLE_ANNOTATIONS = {
    "List", "Dict", "Set", "list", "dict", "set", "bytearray", "MutableMapping",
    "MutableSequence", "MutableSet", "DefaultDict", "deque", "Deque",
}


def _dataclass_decorators(cls: ast.ClassDef) -> Iterator[ast.expr]:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            yield decorator


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _spec_fields(cls: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    fields = []
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if isinstance(item.annotation, ast.Constant):
                continue  # string annotation of a ClassVar, unlikely here
            fields.append((item.target.id, item))
    return fields


@rule("SIM301", "mutable-spec", _PACKAGES,
      "run-identity dataclass that is not frozen")
def check_frozen(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        decorators = list(_dataclass_decorators(node))
        if not decorators:
            continue
        if not any(_is_frozen(d) for d in decorators):
            found.append(make_violation(
                _rule("SIM301"), module, node,
                f"{node.name} defines run identity but is a mutable "
                "dataclass; declare @dataclass(frozen=True) so hashed state "
                "cannot drift after hashing",
            ))
    return found


def _described_names(describe: ast.FunctionDef) -> Set[str]:
    """Every ``self.<attr>`` read inside describe()."""
    names: Set[str] = set()
    for node in ast.walk(describe):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            names.add(node.attr)
    return names


@rule("SIM302", "hash-omission", ("exec.runspec",),
      "RunSpec field that describe() never serialises into the hash")
def check_hash_omission(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name != "RunSpec":
            continue
        describe = next(
            (item for item in node.body
             if isinstance(item, ast.FunctionDef) and item.name == "describe"),
            None,
        )
        fields = _spec_fields(node)
        if describe is None:
            if fields:
                found.append(make_violation(
                    _rule("SIM302"), module, node,
                    "RunSpec has no describe() method; the content hash has "
                    "nothing canonical to serialise",
                ))
            continue
        described = _described_names(describe)
        for name, field_node in fields:
            if name not in described:
                found.append(make_violation(
                    _rule("SIM302"), module, field_node,
                    f"RunSpec.{name} never appears in describe(): two specs "
                    "differing only in this field share one content hash and "
                    "will silently share one cached result",
                ))
    return found


def _annotation_names(annotation: ast.AST) -> Iterator[str]:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


@rule("SIM303", "unhashable-field", ("exec.runspec",),
      "spec field annotated with a mutable container type")
def check_unhashable_field(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(True for _ in _dataclass_decorators(node)):
            continue
        for name, field_node in _spec_fields(node):
            mutable = set(_annotation_names(field_node.annotation)) \
                & _MUTABLE_ANNOTATIONS
            if mutable:
                found.append(make_violation(
                    _rule("SIM303"), module, field_node,
                    f"{node.name}.{name} is annotated with mutable "
                    f"{'/'.join(sorted(mutable))}; spec fields must be "
                    "hashable (tuples, frozen dataclasses, scalars)",
                ))
    return found
