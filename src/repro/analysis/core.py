"""simlint core: source model, allowlists, rule registry, runner.

The analyzer parses every Python file it is pointed at into a
:class:`SourceModule` (path, dotted module name, AST, allowlist entries)
and hands the whole collection to each registered rule, so rules can be
cross-file (the mechanism-contract rules read hook signatures out of
``mechanisms/base.py`` while checking ``mechanisms/tcp.py``).

Scoping
-------
Rules declare the packages they police (``PACKAGES``).  A module that
lives inside the ``repro`` package is checked by a rule only when its
dotted name falls under one of those packages; a *standalone* file — one
not importable as ``repro.*``, e.g. a test fixture — is checked by every
rule.  That is what lets one known-bad snippet per rule live under
``tests/analysis_fixtures/`` without having to fake a package tree.

Allowlisting
------------
A violation is suppressed by an inline comment on the flagged line or
the line above it::

    value = os.environ.get("REPRO_SANITIZE")  # simlint: allow[SIM203] read once at import

The bracket takes a comma-separated list of rule ids (or ``*`` for all
rules — reserve that for generated code).  The text after the bracket is
the required justification; an allow comment with no reason is itself a
violation (SIM001), because an unexplained suppression is exactly the
kind of silent methodology drift the paper warns about.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Packages (dotted, relative to ``repro``) that constitute the simulated
#: path: code whose behaviour feeds a RunResult and therefore the
#: content-addressed result store.  Determinism rules police these.
SIM_PATH_PACKAGES: Tuple[str, ...] = (
    "kernel", "cache", "cpu", "dram", "mechanisms", "trace",
)

_ALLOW_RE = re.compile(
    r"#\s*simlint:\s*allow\[(?P<rules>[^\]]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str                 # e.g. "SIM203"
    name: str                 # symbolic name, e.g. "env-read"
    path: str                 # file path as given to the analyzer
    line: int                 # 1-based
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.name}] {self.message}"


@dataclass(frozen=True)
class AllowEntry:
    """A parsed ``# simlint: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, rule: str, line: int) -> bool:
        # An allow comment suppresses its own line and the line below it
        # (so it can sit above a long statement).
        if line not in (self.line, self.line + 1):
            return False
        return "*" in self.rules or rule in self.rules


#: ``ast.parse`` calls performed through :class:`SourceModule` since the
#: last :func:`clear_parse_cache`.  Tests assert on this to pin the
#: parse-each-file-exactly-once property of a full run.
_PARSE_COUNT = 0


class SourceModule:
    """One parsed source file plus its lint metadata."""

    def __init__(self, path: Path, text: str, module: Optional[str]) -> None:
        global _PARSE_COUNT
        self.path = path
        self.text = text
        self.module = module          # dotted name under repro, or None
        _PARSE_COUNT += 1
        self.tree = ast.parse(text, filename=str(path))
        self.allows = _parse_allows(text)

    @property
    def standalone(self) -> bool:
        """True when the file is not part of the ``repro`` package."""
        return self.module is None

    def in_package(self, packages: Iterable[str]) -> bool:
        """Whether this module falls under any of ``packages``.

        Standalone files (fixtures, ad-hoc snippets) match every package
        so each bad-example file exercises its rule without scaffolding.
        """
        if self.module is None:
            return True
        for package in packages:
            if package == "":  # whole-tree rule
                return True
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    def allowed(self, rule: str, line: int) -> bool:
        return any(entry.covers(rule, line) for entry in self.allows)


def _parse_allows(text: str) -> List[AllowEntry]:
    entries: List[AllowEntry] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",")
            if token.strip()
        )
        entries.append(AllowEntry(lineno, rules, match.group("reason").strip()))
    return entries


# -- rule registry -------------------------------------------------------------

#: A rule callable: (module, all_modules) -> violations for that module.
RuleFn = Callable[[SourceModule, Sequence[SourceModule]], List[Violation]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    rule_id: str
    name: str
    packages: Tuple[str, ...]     # dotted packages under repro this rule scans
    doc: str
    fn: RuleFn = field(compare=False)


_RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str, name: str, packages: Tuple[str, ...], doc: str
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as lint rule ``rule_id``."""

    def register(fn: RuleFn) -> RuleFn:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = Rule(rule_id, name, packages, doc, fn)
        return fn

    return register


def all_rules() -> List[Rule]:
    return [_RULES[key] for key in sorted(_RULES)]


def make_violation(
    rule_obj: Rule, module: SourceModule, node_or_line: object, message: str
) -> Violation:
    raw = getattr(node_or_line, "lineno", node_or_line)
    return Violation(
        rule=rule_obj.rule_id,
        name=rule_obj.name,
        path=str(module.path),
        line=raw if isinstance(raw, int) else 1,
        message=message,
    )


# -- loading -------------------------------------------------------------------

def _module_name(path: Path) -> Optional[str]:
    """Dotted name relative to the ``repro`` package, or None."""
    parts = path.resolve().with_suffix("").parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            inner = [p for p in parts[i + 1:] if p != "__init__"]
            return ".".join(inner) if inner else ""
    return None


#: Cross-call parse cache: resolved path -> (mtime_ns, size, module).
#: ``analyze_paths`` used to re-parse the whole tree on every call, which
#: multiplied across the CLI's fixture-rejection loop and the SIM8xx
#: verifier's repeated whole-tree anchoring; the cache makes a full run
#: parse each file exactly once (``parse_count`` pins that in tests).
_PARSE_CACHE: Dict[str, Tuple[int, int, SourceModule]] = {}


def parse_count() -> int:
    """``ast.parse`` calls performed since :func:`clear_parse_cache`."""
    return _PARSE_COUNT


def clear_parse_cache() -> None:
    """Drop cached parses and reset the parse counter (test isolation)."""
    global _PARSE_COUNT
    _PARSE_CACHE.clear()
    _PARSE_COUNT = 0


def _load_file(file: Path) -> SourceModule:
    """Parse ``file``, served from the cross-call cache when unchanged.

    Freshness is keyed on (mtime_ns, size) so an edited file re-parses;
    a cached module is reused only when asked for under the same spelling
    of its path (violation rendering shows the path as given).
    """
    key = str(file.resolve())
    stat = file.stat()
    cached = _PARSE_CACHE.get(key)
    if (cached is not None and cached[0] == stat.st_mtime_ns
            and cached[1] == stat.st_size and str(cached[2].path) == str(file)):
        return cached[2]
    module = SourceModule(file, file.read_text("utf-8"), _module_name(file))
    _PARSE_CACHE[key] = (stat.st_mtime_ns, stat.st_size, module)
    return module


def load_paths(paths: Sequence[Path]) -> Tuple[List[SourceModule], List[Violation]]:
    """Parse every ``.py`` file under ``paths``; syntax errors become SIM000."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    modules: List[SourceModule] = []
    errors: List[Violation] = []
    for file in files:
        try:
            modules.append(_load_file(file))
        except SyntaxError as exc:
            errors.append(Violation(
                rule="SIM000", name="syntax-error", path=str(file),
                line=exc.lineno or 1, message=f"cannot parse: {exc.msg}",
            ))
    return modules, errors


# -- running -------------------------------------------------------------------

def _check_allow_reasons(module: SourceModule) -> List[Violation]:
    """SIM001: every allow comment must carry a justification."""
    found = []
    for entry in module.allows:
        if not entry.reason:
            found.append(Violation(
                rule="SIM001", name="bare-allowlist", path=str(module.path),
                line=entry.line,
                message="allow comment without a reason; say why the "
                        "suppression is sound",
            ))
    return found


def analyze_modules(
    modules: Sequence[SourceModule],
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Run every registered rule over ``modules``; return sorted violations."""
    active = all_rules()
    if select:
        prefixes = tuple(select)
        active = [r for r in active if r.rule_id.startswith(prefixes)
                  or r.name in prefixes]
    violations: List[Violation] = []
    for module in modules:
        violations.extend(_check_allow_reasons(module))
    for rule_obj in active:
        for module in modules:
            if not module.in_package(rule_obj.packages):
                continue
            for violation in rule_obj.fn(module, modules):
                if module.allowed(violation.rule, violation.line):
                    continue
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def analyze_paths(
    paths: Sequence[Path], select: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Load ``paths`` and run the analyzer; parse errors are violations too."""
    modules, errors = load_paths(paths)
    return errors + analyze_modules(modules, select=select)
