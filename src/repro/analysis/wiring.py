"""SIM4xx — port and stat wiring.

The component model (``kernel/module.py``) raises at *runtime* on
duplicate stat or port names and silently does nothing for a port that
was declared but never bound.  These rules surface the same defects
before a simulation ever constructs the component:

* SIM401 ``duplicate-stat`` — the same stat name literal registered
  twice in one class (the second ``add_stat`` would raise mid-run).
* SIM402 ``duplicate-port`` — likewise for ``add_port``.
* SIM403 ``unbound-port`` — a port attribute that no code in the scanned
  tree ever ``bind()``s: traffic sent into it would dead-end.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.core import SourceModule, Violation, make_violation, rule
from repro.analysis.contract import _rule

_PACKAGES = ("",)  # whole tree


def _registrations(
    cls: ast.ClassDef, method: str
) -> List[Tuple[str, ast.Call, str]]:
    """(name literal, call node, attribute target) for self.<method>("...")."""
    out = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and fn.attr == method
                and isinstance(fn.value, ast.Name) and fn.value.id == "self"):
            continue
        if not (node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            continue
        out.append((node.args[0].value, node, _assigned_attr(cls, node)))
    return out


def _assigned_attr(cls: ast.ClassDef, call: ast.Call) -> str:
    """The ``self.<attr>`` a registration call is assigned to, if any."""
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and node.value is call:
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return target.attr
    return ""


def _check_duplicates(
    module: SourceModule, method: str, rule_id: str, kind: str
) -> List[Violation]:
    found = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        seen: Dict[str, int] = {}
        for name, call, _ in _registrations(cls, method):
            if name in seen:
                found.append(make_violation(
                    _rule(rule_id), module, call,
                    f"{cls.name} registers {kind} {name!r} twice (first at "
                    f"line {seen[name]}); the second registration raises at "
                    "construction time",
                ))
            else:
                seen[name] = call.lineno
    return found


@rule("SIM401", "duplicate-stat", _PACKAGES,
      "the same stat name registered twice in one class")
def check_duplicate_stat(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    return _check_duplicates(module, "add_stat", "SIM401", "stat")


@rule("SIM402", "duplicate-port", _PACKAGES,
      "the same port name registered twice in one class")
def check_duplicate_port(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    return _check_duplicates(module, "add_port", "SIM402", "port")


def _bound_attrs(modules: Sequence[SourceModule]) -> Set[str]:
    """Attribute names that appear in any ``<x>.bind(<y>)`` call."""
    bound: Set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (isinstance(fn, ast.Attribute) and fn.attr == "bind"):
                continue
            # receiver: a.b.bind(...) -> "b"; port.bind(...) -> "port"
            receiver = fn.value
            if isinstance(receiver, ast.Attribute):
                bound.add(receiver.attr)
            elif isinstance(receiver, ast.Name):
                bound.add(receiver.id)
            for arg in node.args:
                if isinstance(arg, ast.Attribute):
                    bound.add(arg.attr)
                elif isinstance(arg, ast.Name):
                    bound.add(arg.id)
    return bound


@rule("SIM403", "unbound-port", _PACKAGES,
      "a declared port that nothing in the tree ever binds")
def check_unbound_port(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    bound = _bound_attrs(modules)
    found = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for name, call, attr in _registrations(cls, "add_port"):
            if attr and attr in bound:
                continue
            if not attr and name in bound:
                continue
            found.append(make_violation(
                _rule("SIM403"), module, call,
                f"{cls.name} declares port {name!r} but nothing in the "
                "analyzed tree binds it; traffic sent into an unbound port "
                "dead-ends",
            ))
    return found
