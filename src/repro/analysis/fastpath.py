"""SIM8xx — guard-completeness verification of the generated fast path.

The trace-speculation fast path (:mod:`repro.cpu.fastpath`,
:meth:`repro.cpu.ooo.OoOCore._emit_fast_loop`) is bit-identical to the
reference loop today, but that equivalence rests on golden tests: run the
same trace twice and diff the stats.  A test can only witness the shapes
and traces it runs.  These rules turn the invariant into a *lint-time
proof obligation*: instantiate the emitters for every registered machine
shape, parse the **emitted** source, and discharge three obligations
against the machine-readable emitter metadata
(:data:`~repro.cpu.fastpath.GUARDS`,
:data:`~repro.cpu.fastpath.STATE_OF_BINDING`,
:data:`~repro.cpu.fastpath.INVARIANT_STATES`):

* SIM801 ``unguarded-state`` — every replay sequence must carry exactly
  the guards its machine shape requires (the event drain, one abort per
  prefetch queue, the residency probe), in emitter order; every free
  name the emitted code references must map to a known simulator state;
  every such state must be covered by a present guard or be provably
  invariant; and no state may be written before the last abort point.
* SIM802 ``replay-order`` — the commit region's ordered sequence of
  state writes must equal the sequence the slow path's hit case performs,
  extracted by symbolically walking ``MemoryHierarchy.load`` /
  ``store`` / ``fetch_instruction`` and ``Cache.access`` under the
  shape's truth assignment (hit taken, residency confirmed).
* SIM803 ``stale-constant`` — every constant the emitter bakes into a
  branch (line bits, set mask, associativity, port count, hit latency,
  ledger prune threshold, counter indices, the dirty-bit mask) must
  equal the live machine's value, and each conditional construct (dirty
  marking, mechanism hook, outer stat bump, image write, tag pipeline)
  must be present exactly when the shape calls for it.

In-tree, the rules anchor on ``cpu/fastpath.py`` and verify every shape;
standalone files opt in by carrying a ``# sim-fastpath:`` marker line
describing the shape their ``def replay`` claims to implement (that is
how the known-bad fixtures exercise each rule without a live machine).
:func:`iter_guard_mutations` produces syntactically valid variants of an
emitted source with exactly one guard removed — the mutation tests prove
SIM801 catches every one of them, for every shape.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.contract import _rule
from repro.analysis.core import (
    SourceModule,
    Violation,
    make_violation,
    rule,
)

#: A finding before it is bound to a module: (rule id, line, message).
Finding = Tuple[str, int, str]

_PACKAGES = ("cpu",)

#: Names the emitted source may reference that are interpreter builtins,
#: not simulator state.
_BUILTINS = frozenset({
    "len", "bool", "max", "min", "range",
    "ValueError", "StopIteration", "IndexError", "KeyError",
})

#: Inline-block prefixes used by the generated run loop.
_PREFIX_RE = re.compile(r"^(if_|ld_|st_)(.+)$")
_QUEUE_RE = re.compile(r"^queue\d+$")

_MARKER_RE = re.compile(r"#\s*sim-fastpath:\s*(?P<fields>.+)$", re.MULTILINE)

#: Calls the emitted code may make before the abort frontier: the kernel
#: drain (exactly what the slow path's advance would run) and the pure
#: probes.
_PREFRONTIER_CALLS = frozenset({"run_until", "tags_index", "ledger_get"})


@dataclass(frozen=True)
class ArtifactShape:
    """Everything the verifier must know about one emitted artifact."""

    kind: str          # "load" | "store" | "ifetch"
    queues: int        # prefetch queues the shape must guard
    hook: bool         # mechanism.on_access baked into the commit region
    write: bool        # store semantics (dirty marking, image write)
    image: bool        # hierarchy has a memory image attached
    precise: bool      # tag pipeline modeled (precise cache timing)
    line_bits: int
    set_mask: int
    assoc: int
    n_ports: int
    latency: int
    prune_every: int


def shape_of(hierarchy: Any, kind: str) -> ArtifactShape:
    """Derive the expected :class:`ArtifactShape` from a live hierarchy."""
    cache = hierarchy.l1i if kind == "ifetch" else hierarchy.l1d
    return ArtifactShape(
        kind=kind,
        queues=len(hierarchy._mech_queues),
        hook=(kind != "ifetch" and cache.mechanism is not None),
        write=(kind == "store"),
        image=(hierarchy.image is not None),
        precise=cache.precise,
        line_bits=cache.line_bits,
        set_mask=cache._set_mask,
        assoc=cache.assoc,
        n_ports=cache.ports.n_ports,
        latency=cache.config.latency,
        prune_every=cache.ports._PRUNE_EVERY,
    )


def _marker_shape(text: str) -> Optional[ArtifactShape]:
    """Parse a ``# sim-fastpath: key=value ...`` marker into a shape."""
    match = _MARKER_RE.search(text)
    if match is None:
        return None
    fields: Dict[str, str] = {}
    for token in match.group("fields").split():
        if "=" in token:
            key, _, value = token.partition("=")
            fields[key] = value
    try:
        return ArtifactShape(
            kind=fields.get("kind", "load"),
            queues=int(fields.get("queues", "0")),
            hook=fields.get("hook", "0") == "1",
            write=fields.get("kind", "load") == "store",
            image=fields.get("image", "0") == "1",
            precise=fields.get("precise", "1") == "1",
            line_bits=int(fields.get("line_bits", "5")),
            set_mask=int(fields.get("set_mask", "127")),
            assoc=int(fields.get("assoc", "4")),
            n_ports=int(fields.get("n_ports", "1")),
            latency=int(fields.get("latency", "1")),
            prune_every=int(fields.get("prune_every", "8192")),
        )
    except ValueError:
        return None


# -- name → canonical state ----------------------------------------------------

def _state_of(name: str) -> Optional[str]:
    """Canonical simulator state for one emitted binding name, or None."""
    from repro.cpu.fastpath import STATE_OF_BINDING

    if name.startswith("g_"):
        name = name[2:]
    if _QUEUE_RE.match(name):
        return "mechanism.queue"
    if name in STATE_OF_BINDING:
        return STATE_OF_BINDING[name]
    stripped = _PREFIX_RE.match(name)
    if stripped is not None:
        inner = stripped.group(2)
        if _QUEUE_RE.match(inner):
            return "mechanism.queue"
        return STATE_OF_BINDING.get(inner)
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The root Name of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# -- frames --------------------------------------------------------------------

@dataclass
class _Frame:
    """One replay sequence: a closure body or an inline while-True block."""

    node: ast.AST
    body: List[ast.stmt]
    prefix: str


def _frames(tree: ast.Module) -> List[_Frame]:
    fn = next(
        (n for n in tree.body
         if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))), None
    )
    if fn is None:
        return []
    inline = [
        node for node in ast.walk(fn)
        if isinstance(node, ast.While)
        and isinstance(node.test, ast.Constant) and node.test.value is True
    ]
    frames: List[_Frame] = []
    if inline:
        for node in inline:
            prefix = ""
            for inner in ast.walk(node):
                if isinstance(inner, ast.Name):
                    match = _PREFIX_RE.match(inner.id)
                    if match and match.group(2) == "tags":
                        prefix = match.group(1)
                        break
            frames.append(_Frame(node, list(node.body), prefix))
        return frames
    return [_Frame(fn, list(fn.body), "")]


# -- guard detection -----------------------------------------------------------

@dataclass
class _Guard:
    name: str                  # "event-drain" | "queued-prefetch" | "resident"
    node: ast.stmt
    counter: int
    queue: Optional[str] = None
    has_abort: bool = False


def _counter_bumps(node: ast.AST) -> List[Tuple[int, ast.AugAssign]]:
    bumps: List[Tuple[int, ast.AugAssign]] = []
    for inner in ast.walk(node):
        if (isinstance(inner, ast.AugAssign)
                and isinstance(inner.target, ast.Subscript)
                and isinstance(inner.target.value, ast.Name)
                and inner.target.value.id == "counts_"
                and isinstance(inner.target.slice, ast.Constant)):
            bumps.append((inner.target.slice.value, inner))
    return bumps


def _has_abort(nodes: Sequence[ast.stmt]) -> bool:
    for node in nodes:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Break):
                return True
            if isinstance(inner, ast.Return) and (
                inner.value is None
                or (isinstance(inner.value, ast.Constant)
                    and inner.value.value is None)
            ):
                return True
    return False


def _detect_guards(frame: _Frame) -> List[_Guard]:
    from repro.cpu.fastpath import (
        ABORT_MISS,
        ABORT_QUEUED_PREFETCH,
        EVENT_DRAINS,
    )

    guards: List[_Guard] = []
    for node in ast.walk(frame.node):
        if isinstance(node, ast.If):
            indices = {index for index, _ in _counter_bumps(node)}
            if EVENT_DRAINS in indices and any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id.endswith("run_until")
                for inner in ast.walk(node)
            ):
                guards.append(_Guard("event-drain", node, EVENT_DRAINS))
            elif ABORT_QUEUED_PREFETCH in indices:
                queue = None
                for inner in ast.walk(node.test):
                    if isinstance(inner, ast.Name) and _QUEUE_RE.match(
                            inner.id.replace("g_", "", 1)):
                        queue = inner.id
                guards.append(_Guard(
                    "queued-prefetch", node, ABORT_QUEUED_PREFETCH,
                    queue=queue, has_abort=_has_abort(node.body),
                ))
        elif isinstance(node, ast.Try):
            for handler in node.handlers:
                indices = {index for index, _ in _counter_bumps(handler)}
                if ABORT_MISS in indices:
                    guards.append(_Guard(
                        "resident", node, ABORT_MISS,
                        has_abort=_has_abort(handler.body),
                    ))
    return guards


# -- the fast side: ordered commit-region writes -------------------------------

def _emit_state(seq: List[str], state: Optional[str]) -> None:
    if state is None or state in ("speculation.counters", "local",
                                  "core.tables", "hierarchy.slowpath"):
        return
    if not seq or seq[-1] != state:
        seq.append(state)


def _nodes_in_order(node: ast.AST) -> List[ast.AST]:
    return sorted(
        (n for n in ast.walk(node)
         if hasattr(n, "lineno") and hasattr(n, "col_offset")),
        key=lambda n: (n.lineno, n.col_offset),
    )


def _collect_expr_writes(node: ast.AST, seq: List[str]) -> None:
    """Mutating calls inside one expression, in source order."""
    for inner in _nodes_in_order(node):
        if not isinstance(inner, ast.Call):
            continue
        func = inner.func
        if isinstance(func, ast.Name):
            name = func.id
            if name.endswith(("tags_index", "ledger_get", "run_until")):
                continue
            _emit_state(seq, _state_of(name))
        elif isinstance(func, ast.Attribute):
            # e.g. ports._prune(t): the mutation lands on the root object.
            root = _root_name(func)
            if root is not None:
                _emit_state(seq, _state_of(root))


def _fast_writes(stmts: Sequence[ast.stmt], seq: List[str]) -> None:
    """Ordered canonical writes of the commit region.

    Conditionals follow the verifier's truth assignment — the taken hit
    branch is the body branch in emitted code (rotation happens, the
    prefetch bit was set), which mirrors :func:`_slow_sequence`.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.If, ast.While)):
            _collect_expr_writes(stmt.test, seq)
            _fast_writes(stmt.body, seq)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
            _collect_expr_writes(stmt.value, seq)
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root is not None:
                        _emit_state(seq, _state_of(root))
        elif isinstance(stmt, ast.Expr):
            _collect_expr_writes(stmt.value, seq)


# -- the slow side: symbolic walk of the reference hit path --------------------

@lru_cache(maxsize=None)
def _slow_fn_body(which: str) -> Tuple[ast.stmt, ...]:
    """Parsed body of one slow-path function, from its live source."""
    import inspect
    import textwrap

    from repro.cache.cache import Cache
    from repro.cache.hierarchy import MemoryHierarchy

    fns = {
        "load": MemoryHierarchy.load,
        "store": MemoryHierarchy.store,
        "ifetch": MemoryHierarchy.fetch_instruction,
        "access": Cache.access,
    }
    source = textwrap.dedent(inspect.getsource(fns[which]))
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return tuple(fn.body)


#: Slow-path attribute chains → canonical states (write targets).
_SLOW_WRITE_CHAINS = {
    "self.st_loads": "hierarchy.stat",
    "self.st_stores": "hierarchy.stat",
    "self.st_writes": "cache.stat.kind",
    "self.st_reads": "cache.stat.kind",
    "self.st_useful_prefetches": "cache.stat.useful",
    "self._tags": "cache.tags",
    "self._ready": "cache.ready",
    "self._touch": "cache.touch",
    "self._flags": "cache.flags",
}

#: Slow-path calls → canonical states they mutate.
_SLOW_CALL_CHAINS = {
    "self.advance": "kernel.clock",
    "self.image.write": "image",
    "self.pipeline.acquire": "cache.pipeline",
    "self.pipeline.stall_until": "cache.pipeline",
    "self.ports.acquire": "cache.ports",
}


def _chain_of(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SlowWalker:
    """Walks the reference hit path under one shape's truth assignment."""

    def __init__(self, shape: ArtifactShape) -> None:
        self.shape = shape
        self.seq: List[str] = []
        #: local name -> canonical state (``tags = self._tags`` style).
        self.aliases: Dict[str, str] = {}
        self.truths: Dict[str, bool] = {
            "self.precise": shape.precise,
            "is_write": shape.write,
            "slot >= 0": True,
            "slot != base": True,
            "was_prefetched": True,
            "line_ready > ready": False,
            "mech is not None": shape.hook,
            "self.image is not None": shape.image,
        }

    def run(self) -> List[str]:
        self._walk(_slow_fn_body(self.shape.kind))
        deduped: List[str] = []
        for state in self.seq:
            if not deduped or deduped[-1] != state:
                deduped.append(state)
        return deduped

    # -- helpers ---------------------------------------------------------------

    def _emit(self, state: Optional[str]) -> None:
        if state is not None:
            self.seq.append(state)

    def _expr_calls(self, node: ast.AST) -> bool:
        """Process calls in one expression; True when access() recursed."""
        recursed = False
        for inner in _nodes_in_order(node):
            if not isinstance(inner, ast.Call):
                continue
            chain = _chain_of(inner.func)
            if chain is None:
                continue
            if chain in ("self.l1d.access", "self.l1i.access"):
                self._walk(_slow_fn_body("access"))
                recursed = True
            elif chain in _SLOW_CALL_CHAINS:
                self._emit(_SLOW_CALL_CHAINS[chain])
            elif "." in chain:
                root, _, rest = chain.partition(".")
                if root in self.aliases and rest == "on_access":
                    self._emit("mechanism.hook")
        return recursed

    def _note_alias(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        value = stmt.value
        if isinstance(value, ast.IfExp):
            value = value.body
        chain = _chain_of(value)
        if chain == "self.mechanism":
            self.aliases[name] = "mechanism"
        elif chain in _SLOW_WRITE_CHAINS:
            self.aliases[name] = _SLOW_WRITE_CHAINS[chain]

    def _target_state(self, target: ast.AST) -> Optional[str]:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return None
        chain = _chain_of(
            target.value if isinstance(target, ast.Subscript) else target
        )
        if chain is None:
            root = _root_name(target)
            chain = root if root is not None else None
        if chain is None:
            return None
        # self.st_loads.value += 1 → chain "self.st_loads.value"
        for known, state in _SLOW_WRITE_CHAINS.items():
            if chain == known or chain.startswith(known + "."):
                return state
        root = chain.split(".", 1)[0]
        return self.aliases.get(root)

    # -- the walk --------------------------------------------------------------

    def _walk(self, stmts: Sequence[ast.stmt]) -> bool:
        """Process ``stmts``; True when a ``return`` ended the walk."""
        import ast as _ast

        for stmt in stmts:
            if isinstance(stmt, _ast.Return):
                if stmt.value is not None:
                    self._expr_calls(stmt.value)
                return True
            if isinstance(stmt, _ast.Assign):
                self._expr_calls(stmt.value)
                self._note_alias(stmt)
                for target in stmt.targets:
                    self._emit(self._target_state(target))
            elif isinstance(stmt, _ast.AugAssign):
                self._expr_calls(stmt.value)
                self._emit(self._target_state(stmt.target))
            elif isinstance(stmt, _ast.Expr):
                self._expr_calls(stmt.value)
            elif isinstance(stmt, _ast.If):
                text = ast.unparse(stmt.test)
                truth = self.truths.get(text)
                if truth is True:
                    if self._walk(stmt.body):
                        return True
                elif truth is False:
                    if self._walk(stmt.orelse):
                        return True
                else:
                    if self._walk(stmt.body):
                        return True
                    if self._walk(stmt.orelse):
                        return True
            elif isinstance(stmt, _ast.Try):
                if self._walk(stmt.body):
                    return True
                for handler in stmt.handlers:
                    if self._walk(handler.body):
                        return True
        return False


@lru_cache(maxsize=None)
def _slow_sequence(shape: ArtifactShape) -> Tuple[str, ...]:
    return tuple(_SlowWalker(shape).run())


# -- SIM803 baked-constant checks ----------------------------------------------

def _check_constants(frame: _Frame, shape: ArtifactShape) -> List[Finding]:
    from repro.cache.cache import DIRTY

    found: List[Finding] = []
    p = frame.prefix

    def local(name: str) -> str:
        return p + name

    def finding(node: ast.AST, message: str) -> None:
        found.append(("SIM803", getattr(node, "lineno", 1), message))

    block_seen = base_seen = ready_seen = ports_seen = prune_seen = False
    dirty_nodes: List[ast.AugAssign] = []
    names: Set[str] = set()
    for node in ast.walk(frame.node):
        if isinstance(node, ast.Name):
            names.add(node.id.replace("g_", "", 1))
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id.replace("g_", "", 1)
            value = node.value
            if target == local("block") and isinstance(value, ast.BinOp) \
                    and isinstance(value.op, ast.RShift):
                block_seen = True
                if not (isinstance(value.right, ast.Constant)
                        and value.right.value == shape.line_bits):
                    finding(node, f"baked line-bits shift disagrees with the "
                                  f"machine: expected {shape.line_bits}")
            elif target == local("base") and isinstance(value, ast.BinOp) \
                    and isinstance(value.op, ast.Mult):
                base_seen = True
                inner, mult = value.left, value.right
                if not (isinstance(mult, ast.Constant)
                        and mult.value == shape.assoc):
                    finding(node, f"baked associativity disagrees with the "
                                  f"machine: expected {shape.assoc}")
                if not (isinstance(inner, ast.BinOp)
                        and isinstance(inner.op, ast.BitAnd)
                        and isinstance(inner.right, ast.Constant)
                        and inner.right.value == shape.set_mask):
                    finding(node, f"baked set mask disagrees with the "
                                  f"machine: expected {shape.set_mask}")
            elif target == local("ready") and isinstance(value, ast.BinOp) \
                    and isinstance(value.op, ast.Add) \
                    and isinstance(value.right, ast.Constant):
                ready_seen = True
                if value.right.value != shape.latency:
                    finding(node, f"baked hit latency disagrees with the "
                                  f"machine: expected {shape.latency}")
        elif isinstance(node, ast.While) and not (
                isinstance(node.test, ast.Constant)):
            for inner in ast.walk(node.test):
                if isinstance(inner, ast.Compare) and len(inner.ops) == 1 \
                        and isinstance(inner.ops[0], ast.GtE) \
                        and isinstance(inner.comparators[0], ast.Constant):
                    ports_seen = True
                    if inner.comparators[0].value != shape.n_ports:
                        finding(node, f"baked port count disagrees with the "
                                      f"machine: expected {shape.n_ports}")
        elif isinstance(node, ast.If):
            test = node.test
            if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                    and isinstance(test.ops[0], ast.Gt) \
                    and isinstance(test.left, ast.Call) \
                    and isinstance(test.left.func, ast.Name) \
                    and test.left.func.id == "len" \
                    and isinstance(test.comparators[0], ast.Constant):
                prune_seen = True
                if test.comparators[0].value != shape.prune_every:
                    finding(node, f"baked ledger prune threshold disagrees "
                                  f"with the machine: expected "
                                  f"{shape.prune_every}")
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.op, ast.BitOr) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == local("line_flags"):
            dirty_nodes.append(node)

    anchor = frame.node
    if not block_seen:
        finding(anchor, "no baked line-bits shift found (block computation "
                        "missing or rewritten)")
    if not base_seen:
        finding(anchor, "no baked set-mask/associativity computation found")
    if not ready_seen:
        finding(anchor, "no baked hit-latency add found")
    if not ports_seen:
        finding(anchor, "no baked port-count comparison found")
    if not prune_seen:
        finding(anchor, "no baked ledger prune threshold found")

    if shape.write and not dirty_nodes:
        finding(anchor, "store shape bakes no dirty-bit marking")
    if not shape.write and dirty_nodes:
        finding(dirty_nodes[0], "non-store shape bakes dirty-bit marking")
    for node in dirty_nodes:
        if not (isinstance(node.value, ast.Constant)
                and node.value.value == DIRTY):
            finding(node, f"baked dirty mask disagrees with the cache "
                          f"flag: expected {DIRTY}")

    def present(name: str) -> bool:
        return local(name) in names

    if shape.hook != present("hook"):
        finding(anchor, "mechanism hook call "
                + ("missing for a hooked shape" if shape.hook
                   else "baked into a hook-less shape"))
    expect_outer = shape.kind != "ifetch"
    if expect_outer != present("st_outer"):
        finding(anchor, "outer load/store stat bump "
                + ("missing" if expect_outer else "baked into an ifetch shape"))
    expect_image = shape.write and shape.image
    if expect_image != present("image_write"):
        finding(anchor, "write-through image update "
                + ("missing" if expect_image else "baked without an image"))
    if shape.precise != present("pipe"):
        finding(anchor, "tag-pipeline acquire "
                + ("missing for a precise cache" if shape.precise
                   else "baked into an imprecise cache"))

    # Any counter bump outside the known indices is a stale emitter.
    from repro.cpu.fastpath import (
        ABORT_MISS,
        ABORT_QUEUED_PREFETCH,
        COMMITS,
        EVENT_DRAINS,
    )
    valid = {COMMITS, EVENT_DRAINS, ABORT_QUEUED_PREFETCH, ABORT_MISS}
    commit_seen = False
    for index, bump in _counter_bumps(frame.node):
        if index not in valid:
            finding(bump, f"speculation counter index {index} is not a "
                          "known counter slot")
        if index == COMMITS:
            commit_seen = True
    if not commit_seen:
        finding(anchor, "commit counter bump missing from the replay")
    return found


# -- the verifier --------------------------------------------------------------

def _free_names(fn: ast.AST) -> Set[str]:
    assigned: Set[str] = set()
    loaded: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            assigned.add(arg.arg)
        if args.vararg is not None:
            assigned.add(args.vararg.arg)
        if args.kwarg is not None:
            assigned.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                assigned.add(node.id)
            else:
                loaded.add(node.id)
    return loaded - assigned - _BUILTINS


def _verify_frame(frame: _Frame, shape: ArtifactShape) -> List[Finding]:
    found: List[Finding] = []
    line = getattr(frame.node, "lineno", 1)
    guards = _detect_guards(frame)
    by_name: Dict[str, List[_Guard]] = {}
    for guard in guards:
        by_name.setdefault(guard.name, []).append(guard)

    drains = by_name.get("event-drain", [])
    queue_guards = by_name.get("queued-prefetch", [])
    residents = by_name.get("resident", [])

    if len(drains) != 1:
        found.append(("SIM801", line,
                      "event-drain guard missing: due kernel events would "
                      "fire late, replaying against stale state"
                      if not drains else
                      "multiple event-drain guards in one replay"))
    if len(residents) != 1:
        found.append(("SIM801", line,
                      "residency guard missing: a miss would be replayed "
                      "as a hit" if not residents else
                      "multiple residency guards in one replay"))
    guarded_queues = {g.queue for g in queue_guards if g.queue is not None}
    if len(guarded_queues) != shape.queues or len(queue_guards) != shape.queues:
        found.append(("SIM801", line,
                      f"shape has {shape.queues} prefetch queue(s) but the "
                      f"replay guards {len(guarded_queues)}: a queued "
                      "prefetch would be reordered past this access"))
    for guard in queue_guards:
        if not guard.has_abort:
            found.append(("SIM801", getattr(guard.node, "lineno", line),
                          "queued-prefetch guard does not abort"))
    for guard in residents:
        if not guard.has_abort:
            found.append(("SIM801", getattr(guard.node, "lineno", line),
                          "residency guard does not abort"))

    # Ordering: drain first, then queue guards, then the residency probe.
    if drains and residents:
        drain_line = drains[0].node.lineno
        resident_line = residents[0].node.lineno
        if drain_line > resident_line:
            found.append(("SIM801", drain_line,
                          "event drain runs after the residency probe; the "
                          "probe reads state the drain may mutate"))
        for guard in queue_guards:
            if not (drain_line < guard.node.lineno < resident_line):
                found.append(("SIM801", guard.node.lineno,
                              "queue guard out of order: must run after the "
                              "event drain and before the residency probe"))

    # No state writes before the last abort point.
    frontier = 0
    for guard in guards:
        frontier = max(frontier, getattr(guard.node, "end_lineno", 0))
    if frontier:
        for node in ast.walk(frame.node):
            lineno = getattr(node, "lineno", None)
            if lineno is None or lineno > frontier:
                continue
            if any(node is g.node or _contains(g.node, node) for g in guards):
                allowed = True  # guard-internal bookkeeping checked above
            else:
                allowed = False
            if isinstance(node, (ast.Assign, ast.AugAssign)) and not allowed:
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    root = _root_name(target)
                    state = _state_of(root) if root is not None else None
                    if state is not None and state != "speculation.counters":
                        found.append(("SIM801", lineno,
                                      f"write to {state} before the last "
                                      "abort point: an aborted replay would "
                                      "leave a side effect"))
            elif isinstance(node, ast.Call) and not allowed:
                func = node.func
                name = func.id if isinstance(func, ast.Name) else None
                if name is not None \
                        and not name.endswith(tuple(_PREFRONTIER_CALLS)):
                    state = _state_of(name)
                    if state is not None and state not in (
                            "speculation.counters",):
                        found.append(("SIM801", lineno,
                                      f"call mutating {state} before the "
                                      "last abort point"))

    # SIM802: the commit region must replay the slow path's writes in order.
    if residents:
        resident = residents[0].node
        try:
            index = frame.body.index(resident)
        except ValueError:
            index = -1
        if index >= 0:
            fast_seq: List[str] = []
            _fast_writes(frame.body[index + 1:], fast_seq)
            slow_seq = list(_slow_sequence(shape))
            if fast_seq != slow_seq:
                found.append(("SIM802",
                              getattr(frame.body[index + 1], "lineno", line)
                              if index + 1 < len(frame.body) else line,
                              "commit region replays the slow path's writes "
                              f"out of order or incompletely: expected "
                              f"{' -> '.join(slow_seq)}, emitted "
                              f"{' -> '.join(fast_seq) or '(nothing)'}"))

    found.extend(_check_constants(frame, shape))
    return found


def _contains(outer: ast.AST, node: ast.AST) -> bool:
    return any(inner is node for inner in ast.walk(outer))


def verify_source(
    source: str, artifacts: Dict[str, ArtifactShape]
) -> List[Finding]:
    """Verify one emitted source against its shape(s).

    ``artifacts`` maps inline-block prefix to shape — ``{"": shape}`` for
    a replay closure, ``{"if_": ..., "ld_": ..., "st_": ...}`` for the
    generated run loop.  Returns (rule, line, message) findings.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [("SIM801", exc.lineno or 1,
                 f"emitted source does not parse: {exc.msg}")]
    frames = _frames(tree)
    if not frames:
        return [("SIM801", 1, "no replay function found in emitted source")]

    found: List[Finding] = []
    fn = next(
        n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )

    # Footprint: every free name must map to a known state, and every
    # state must be guarded or invariant.
    from repro.cpu.fastpath import GUARDS, INVARIANT_STATES

    protected: Set[str] = set()
    present_guards: Set[str] = set()
    for frame in frames:
        for guard in _detect_guards(frame):
            present_guards.add(guard.name)
    for spec in GUARDS:
        if spec.name in present_guards:
            protected.update(spec.protects)

    touched: Dict[str, str] = {}
    for name in sorted(_free_names(fn)):
        state = _state_of(name)
        if state is None:
            found.append(("SIM801", 1,
                          f"emitted code references '{name}', which maps to "
                          "no known simulator state; extend "
                          "STATE_OF_BINDING or stop touching it"))
        else:
            touched.setdefault(state, name)
    for state, name in sorted(touched.items()):
        if state not in protected and state not in INVARIANT_STATES:
            found.append(("SIM801", 1,
                          f"state '{state}' (via '{name}') is neither "
                          "protected by a present guard nor provably "
                          "invariant"))

    for frame in frames:
        shape = artifacts.get(frame.prefix)
        if shape is None:
            found.append(("SIM801", getattr(frame.node, "lineno", 1),
                          f"inline frame with prefix '{frame.prefix}' has "
                          "no declared shape"))
            continue
        found.extend(_verify_frame(frame, shape))
    return found


@lru_cache(maxsize=256)
def _verify_standalone(text: str, shape: ArtifactShape) -> Tuple[Finding, ...]:
    return tuple(verify_source(text, {"": shape}))


# -- mutation helper (used by the tests) ---------------------------------------

def iter_guard_mutations(source: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(guard, mutated_source)`` with exactly one guard removed.

    Each variant is syntactically valid: guard ``if`` blocks are dropped
    whole (with their tag comment), and the residency ``try``/``except``
    is replaced by its dedented probe line.  For the generated run loop,
    every inline occurrence yields its own mutation.
    """
    lines = source.split("\n")

    def without(start: int, count: int,
                replace: Optional[List[str]] = None) -> str:
        out = list(lines)
        out[start:start + count] = replace or []
        # Also drop the guard-tag comment riding above the block.
        if start > 0 and "# guard[" in out[start - 1]:
            del out[start - 1]
        return "\n".join(out)

    for i, text in enumerate(lines):
        stripped = text.strip()
        if stripped.startswith("if ") and "event_times and" in stripped:
            yield "event-drain", without(i, 3)
        elif re.match(r"^if (g_)?queue\d+:$", stripped):
            yield "queued-prefetch", without(i, 3)
        elif stripped == "try:" and i + 2 < len(lines) \
                and lines[i + 2].strip().startswith("except ValueError"):
            probe = lines[i + 1]
            dedented = probe.replace("    ", "", 1)
            yield "resident", without(i, 5, replace=[dedented])


# -- in-tree anchoring ---------------------------------------------------------

def iter_tree_artifacts() -> Iterator[Tuple[str, str, Dict[str, ArtifactShape]]]:
    """Yield ``(label, emitted source, artifacts)`` for every verified shape.

    One machine per registered mechanism (plus the bare baseline and an
    imprecise SimpleScalar-style variant), and per machine the three
    replay closures plus the generated run loop.
    """
    from repro.core.config import baseline_config
    from repro.core.simulation import build_machine
    from repro.cpu.fastpath import emit_replay_source
    from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, create
    from repro.workloads.image import MemoryImage

    machines: List[Tuple[str, Any, Any]] = [("baseline", None, None)]
    for name in ALL_MECHANISMS + EXTENSIONS:
        machines.append((name, None, create(name)))
    machines.append(
        ("baseline-imprecise", baseline_config().with_simplescalar_cache(),
         None)
    )
    machines.append(
        ("TK-imprecise", baseline_config().with_simplescalar_cache(),
         create("TK"))
    )

    for label, config, mechanism in machines:
        core, hierarchy = build_machine(config, mechanism, MemoryImage())
        for kind in ("load", "store", "ifetch"):
            source, _ = emit_replay_source(hierarchy, kind)
            yield (f"{label}/{kind}", source,
                   {"": shape_of(hierarchy, kind)})
        loop_source, _ = core._emit_fast_loop([0, 0, 0, 0], None)
        yield (f"{label}/loop", loop_source, {
            "if_": shape_of(hierarchy, "ifetch"),
            "ld_": shape_of(hierarchy, "load"),
            "st_": shape_of(hierarchy, "store"),
        })


_TREE_FINDINGS: Optional[List[Finding]] = None


def _verify_tree() -> List[Finding]:
    """Findings across every shape, memoised for the process lifetime."""
    global _TREE_FINDINGS
    if _TREE_FINDINGS is None:
        findings: List[Finding] = []
        for label, source, artifacts in iter_tree_artifacts():
            for rule_id, _, message in verify_source(source, artifacts):
                findings.append((rule_id, 1, f"[{label}] {message}"))
        _TREE_FINDINGS = findings
    return _TREE_FINDINGS


def _module_findings(module: SourceModule) -> List[Finding]:
    if module.standalone:
        shape = _marker_shape(module.text)
        if shape is None:
            return []
        return list(_verify_standalone(module.text, shape))
    if module.module == "cpu.fastpath":
        return _verify_tree()
    return []


def _bind(module: SourceModule, rule_id: str) -> List[Violation]:
    return [
        make_violation(_rule(rule_id), module, line, message)
        for found_id, line, message in _module_findings(module)
        if found_id == rule_id
    ]


@rule("SIM801", "unguarded-state", _PACKAGES,
      "every state the emitted fast path touches must be guarded or "
      "provably invariant, with the full guard set present and in order")
def check_unguarded_state(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    return _bind(module, "SIM801")


@rule("SIM802", "replay-order", _PACKAGES,
      "the emitted commit region must replay the slow path's writes in "
      "the slow path's order, completely")
def check_replay_order(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    return _bind(module, "SIM802")


@rule("SIM803", "stale-constant", _PACKAGES,
      "every constant and conditional construct the emitter bakes must "
      "match the live machine shape")
def check_stale_constant(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    return _bind(module, "SIM803")
