"""simlint command line: ``python -m repro.analysis [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import repro
from repro.analysis import all_rules, analyze_paths


def _default_target() -> Path:
    """The installed ``repro`` package source tree."""
    return Path(repro.__file__).resolve().parent


def _list_rules() -> int:
    for rule_obj in all_rules():
        scope = ", ".join(p or "<tree>" for p in rule_obj.packages)
        print(f"{rule_obj.rule_id}  {rule_obj.name:<22} [{scope}]")
        print(f"        {rule_obj.doc}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: static contract & determinism analysis for "
                    "the MicroLib component model",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(default: the repro package)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE",
                        help="only run rules whose id starts with RULE or "
                             "whose name equals RULE (repeatable)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    targets: List[Path] = (
        [Path(p) for p in args.paths] if args.paths else [_default_target()]
    )
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2

    violations = analyze_paths(targets, select=args.select)

    if args.format == "json":
        print(json.dumps(
            [violation.__dict__ for violation in violations], indent=1
        ))
    else:
        for violation in violations:
            print(violation.render())
        n_files = sum(
            len(list(t.rglob("*.py"))) if t.is_dir() else 1 for t in targets
        )
        summary = (
            f"simlint: {len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} in {n_files} files"
        )
        print(summary, file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
