"""simlint command line: ``python -m repro.analysis [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro.analysis import all_rules, analyze_paths
from repro.analysis.core import Violation


def _default_target() -> Path:
    """The installed ``repro`` package source tree."""
    return Path(repro.__file__).resolve().parent


def _sarif(violations: Sequence[Violation]) -> Dict[str, object]:
    """Render violations as a SARIF 2.1.0 log.

    Minimal but valid: one run, one result per violation, the full rule
    catalogue as the tool's ``rules`` array so viewers (and GitHub code
    scanning, which annotates PR diffs from uploaded SARIF) can show each
    rule's description next to the finding.
    """
    rules = [
        {
            "id": rule_obj.rule_id,
            "name": rule_obj.name,
            "shortDescription": {"text": rule_obj.doc},
        }
        for rule_obj in all_rules()
    ]
    index_of = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [
        {
            "ruleId": violation.rule,
            **({"ruleIndex": index_of[violation.rule]}
               if violation.rule in index_of else {}),
            "level": "error",
            "message": {"text": f"[{violation.name}] {violation.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {"startLine": violation.line},
                },
            }],
        }
        for violation in violations
    ]
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri":
                        "https://github.com/example/repro/blob/main/docs/analysis.md",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def _list_rules() -> int:
    for rule_obj in all_rules():
        scope = ", ".join(p or "<tree>" for p in rule_obj.packages)
        print(f"{rule_obj.rule_id}  {rule_obj.name:<22} [{scope}]")
        print(f"        {rule_obj.doc}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: static contract & determinism analysis for "
                    "the MicroLib component model",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(default: the repro package)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE",
                        help="only run rules whose id starts with RULE or "
                             "whose name equals RULE (repeatable)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="text (human), json (raw records), or sarif "
                             "(SARIF 2.1.0, for CI diff annotation)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    targets: List[Path] = (
        [Path(p) for p in args.paths] if args.paths else [_default_target()]
    )
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2

    violations = analyze_paths(targets, select=args.select)

    if args.format == "json":
        print(json.dumps(
            [violation.__dict__ for violation in violations], indent=1
        ))
    elif args.format == "sarif":
        print(json.dumps(_sarif(violations), indent=1))
    else:
        for violation in violations:
            print(violation.render())
        n_files = sum(
            len(list(t.rglob("*.py"))) if t.is_dir() else 1 for t in targets
        )
        summary = (
            f"simlint: {len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} in {n_files} files"
        )
        print(summary, file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
