"""SIM6xx — robustness discipline.

The fault-tolerance layer (:mod:`repro.exec.policy`) gives failures one
sanctioned shape: an attempt either propagates its exception (so the
retry machinery can count, back off and re-run it) or is deliberately
converted into a :class:`~repro.exec.policy.FailedRun` hole that stays
visible in grids, tables and the ledger.  What it must never do is
evaporate — a ``try/except`` that catches broadly and carries on turns a
mis-simulated cell into a silently wrong number, which is precisely the
methodological rot the paper warns about.

* SIM601 ``swallowed-exception`` — an ``except`` handler in a sim-path
  package that catches ``Exception``/``BaseException`` (or everything,
  via a bare ``except:``) without re-raising or referencing
  ``FailedRun``, or any handler whose whole body is ``pass``.
  Legitimate sites (best-effort cleanup that re-raises elsewhere,
  benign races on garbage deletion) carry an
  ``# simlint: allow[SIM601] <reason>`` justification.

* SIM602 ``trapped-interrupt`` — an ``except`` handler that names
  ``KeyboardInterrupt`` or ``SystemExit`` without re-raising or routing
  through the shutdown layer (:mod:`repro.exec.shutdown`).  Since the
  graceful-shutdown work, Ctrl-C and SIGTERM are *requests* the sweep
  must honour — drain, flush the journal, exit ``128 + signum`` — and a
  handler that traps the interrupt and carries on breaks that contract:
  the operator's second signal is then the only way out, and it loses
  the drain.  Handlers that re-raise (the standard
  ``except KeyboardInterrupt: raise`` pass-through) or reference the
  shutdown manager / :class:`~repro.exec.shutdown.SweepInterrupted` are
  sanctioned; anything else needs an
  ``# simlint: allow[SIM602] <reason>``.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.analysis.contract import _rule
from repro.analysis.core import (
    SIM_PATH_PACKAGES,
    SourceModule,
    Violation,
    make_violation,
    rule,
)

#: The sim path plus the execution layer that shepherds its failures.
_PACKAGES = SIM_PATH_PACKAGES + ("exec",)

#: Exception names considered catch-everything.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    """The exception names a handler catches ([] for a bare ``except:``)."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for item in nodes:
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
    return names


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except catches everything
    return any(name in _BROAD_NAMES for name in _caught_names(handler))


def _handler_converts(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or converts to a FailedRun."""
    for node in handler.body:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return True
            if isinstance(inner, ast.Name) and inner.id == "FailedRun":
                return True
            if isinstance(inner, ast.Attribute) and inner.attr == "FailedRun":
                return True
    return False


def _is_pass_only(handler: ast.ExceptHandler) -> bool:
    return all(isinstance(node, ast.Pass) for node in handler.body)


#: Interrupt-class exceptions a sweep must honour, never trap (SIM602).
_INTERRUPT_NAMES = frozenset({"KeyboardInterrupt", "SystemExit"})


def _routes_shutdown(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or defers to the shutdown layer.

    A ``raise`` anywhere in the body sanctions it (the pass-through
    idiom and conversion to :class:`SweepInterrupted` both qualify), as
    does any reference whose name mentions the shutdown machinery —
    ``SHUTDOWN``, ``ShutdownManager``, ``self.shutdown``,
    ``SweepInterrupted`` — since routing through the manager is exactly
    the sanctioned response to an interrupt.
    """
    for node in handler.body:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return True
            name = None
            if isinstance(inner, ast.Name):
                name = inner.id
            elif isinstance(inner, ast.Attribute):
                name = inner.attr
            if name is not None:
                lowered = name.lower()
                if "shutdown" in lowered or lowered == "sweepinterrupted":
                    return True
    return False


@rule("SIM601", "swallowed-exception", _PACKAGES,
      "sim-path code must not swallow exceptions: re-raise, convert to "
      "a FailedRun, or justify with an allow comment")
def check_swallowed_exception(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if _is_pass_only(handler):
                caught = ", ".join(_caught_names(handler)) or "everything"
                found.append(make_violation(
                    _rule("SIM601"), module, handler,
                    f"except ({caught}) with a pass-only body silently "
                    "discards the failure; handle it, re-raise, or "
                    "justify the suppression with an allow comment",
                ))
                continue
            if _is_broad(handler) and not _handler_converts(handler):
                caught = ", ".join(_caught_names(handler)) or "bare except"
                found.append(make_violation(
                    _rule("SIM601"), module, handler,
                    f"broad handler ({caught}) neither re-raises nor "
                    "converts to a FailedRun; a swallowed failure here "
                    "becomes a silently wrong result — let it propagate "
                    "so the retry policy can account for it",
                ))
    return found


@rule("SIM602", "trapped-interrupt", _PACKAGES,
      "sim-path code must not trap KeyboardInterrupt/SystemExit: "
      "re-raise, or route through the shutdown manager")
def check_trapped_interrupt(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            trapped = [name for name in _caught_names(handler)
                       if name in _INTERRUPT_NAMES]
            # Bare excepts and BaseException handlers are SIM601's beat;
            # SIM602 is about handlers that *name* an interrupt.
            if not trapped or _routes_shutdown(handler):
                continue
            caught = ", ".join(trapped)
            found.append(make_violation(
                _rule("SIM602"), module, handler,
                f"handler traps {caught} without re-raising or routing "
                "through the shutdown manager; a trapped interrupt "
                "skips the graceful drain-and-journal path and strands "
                "the operator — re-raise it, raise SweepInterrupted, "
                "or justify with an allow comment",
            ))
    return found
