"""SIM9xx — snapshot completeness for the checkpoint protocol.

Mid-run checkpointing (:mod:`repro.exec.checkpoint`) only restores what
a class *declares*: :func:`repro.kernel.state.snapshot_fields` walks
``SNAPSHOT_FIELDS`` and nothing else.  A piece of mutable run state
added to ``__init__`` but forgotten in the declaration is therefore the
worst kind of bug — every test that doesn't cross a checkpoint boundary
passes, and a resumed run silently diverges only when that one table
happens to matter.  These rules make the decision mandatory at lint
time: every attribute assigned on ``self`` lands in ``SNAPSHOT_FIELDS``
(checkpointed) or ``SNAPSHOT_EXEMPT`` (deliberately not: immutable
config, wiring to components that snapshot themselves), and every
declared name provably exists.

* SIM901 ``undeclared-snapshot-state`` — a class participating in the
  snapshot protocol (it, or an ancestor the analyzer can resolve,
  declares ``SNAPSHOT_FIELDS``/``SNAPSHOT_EXEMPT``) assigns ``self.x``
  in ``__init__`` where ``x`` appears in neither tuple, its own or any
  ancestor's.  Stats and ports are auto-exempt (``self.x =
  self.add_stat(...)`` / ``add_port(...)``): both have their own
  snapshot story through the component protocol.

* SIM902 ``phantom-snapshot-field`` — a declared name is never assigned
  anywhere in the declaring class or its resolvable ancestors.  A
  phantom field is either a typo (the real attribute silently escapes
  the checkpoint — SIM901's bug wearing a disguise) or dead weight that
  makes ``getattr`` in :func:`snapshot_fields` raise at the first cut.

Inheritance is resolved *cross-module* by class name over every file
handed to the analyzer, the same whole-tree model the SIM1xx contract
rules use — so ``cache.py`` declaring fields its base in ``module.py``
assigns is understood, and so is the reverse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.contract import _rule
from repro.analysis.core import (
    SIM_PATH_PACKAGES,
    SourceModule,
    Violation,
    make_violation,
    rule,
)

#: The two class attributes that constitute a snapshot declaration.
_DECLS = ("SNAPSHOT_FIELDS", "SNAPSHOT_EXEMPT")

#: ``self.x = self.<call>(...)`` forms that are exempt by construction:
#: stats and ports snapshot through the component protocol, never via
#: the declaring class's field list.
_AUTO_EXEMPT_CALLS = frozenset({"add_stat", "add_port"})


@dataclass
class _ClassInfo:
    """Everything SIM9xx needs to know about one class definition."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    bases: Tuple[str, ...]
    declares: bool = False
    fields: Tuple[str, ...] = ()          # own SNAPSHOT_FIELDS literals
    exempt: Tuple[str, ...] = ()          # own SNAPSHOT_EXEMPT literals
    decl_lines: Dict[str, int] = field(default_factory=dict)
    init_assigns: Dict[str, int] = field(default_factory=dict)
    auto_exempt: Set[str] = field(default_factory=set)
    assigned_anywhere: Set[str] = field(default_factory=set)


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _string_literals(node: ast.AST) -> List[Tuple[str, int]]:
    """Every string constant in an expression, with its line.

    Tolerant of composed declarations like
    ``Base.SNAPSHOT_EXEMPT + ("x", "y")`` — the attribute reference
    contributes nothing (its names arrive via ancestry), the literal
    tuple contributes its strings.
    """
    found = []
    for inner in ast.walk(node):
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            found.append((inner.value, inner.lineno))
    return found


def _self_attr_names(target: ast.AST) -> List[str]:
    """Names ``x`` for every ``self.x`` inside an assignment target."""
    names = []
    for inner in ast.walk(target):
        if (isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"):
            names.append(inner.attr)
    return names


def _is_auto_exempt(value: ast.AST) -> bool:
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _AUTO_EXEMPT_CALLS)


def _scan_class(node: ast.ClassDef, module: SourceModule) -> _ClassInfo:
    info = _ClassInfo(node.name, module, node, _base_names(node))
    for stmt in node.body:
        # Class-level declarations and attribute defaults.
        targets: List[ast.AST] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id in _DECLS:
                info.declares = True
                literals = _string_literals(value)
                names = tuple(name for name, _line in literals)
                if target.id == "SNAPSHOT_FIELDS":
                    info.fields = names
                else:
                    info.exempt = names
                for name, line in literals:
                    info.decl_lines.setdefault(name, line)
            else:
                # A class attribute is a legitimate home for a declared
                # field's default.
                info.assigned_anywhere.add(target.id)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # Method bodies: every self.x assignment, anywhere.
        for inner in ast.walk(stmt):
            targets = []
            value = None
            if isinstance(inner, ast.Assign):
                targets, value = inner.targets, inner.value
            elif isinstance(inner, ast.AnnAssign):
                targets, value = [inner.target], inner.value
            elif isinstance(inner, ast.AugAssign):
                targets, value = [inner.target], inner.value
            for target in targets:
                for name in _self_attr_names(target):
                    info.assigned_anywhere.add(name)
                    if stmt.name != "__init__":
                        continue
                    info.init_assigns.setdefault(name, inner.lineno)
                    if value is not None and _is_auto_exempt(value):
                        info.auto_exempt.add(name)
    return info


#: Single-slot registry cache: rules run once per (module, modules)
#: pair, so without it the whole-tree scan would repeat per file.
_CACHE: Tuple[int, int, Dict[str, _ClassInfo]] = (0, 0, {})


def _registry(modules: Sequence[SourceModule]) -> Dict[str, _ClassInfo]:
    global _CACHE
    key = (id(modules), len(modules))
    if _CACHE[:2] == key:
        return _CACHE[2]
    registry: Dict[str, _ClassInfo] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                registry[node.name] = _scan_class(node, module)
    _CACHE = (key[0], key[1], registry)
    return registry


def _ancestry(info: _ClassInfo,
              registry: Dict[str, _ClassInfo]) -> List[_ClassInfo]:
    """``info`` plus every resolvable ancestor, cycle-safe."""
    seen: Set[str] = set()
    order: List[_ClassInfo] = []
    stack = [info.name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        entry = registry.get(name)
        if entry is None:
            continue
        order.append(entry)
        stack.extend(entry.bases)
    return order


def _in_protocol(info: _ClassInfo,
                 registry: Dict[str, _ClassInfo]) -> bool:
    return any(entry.declares for entry in _ancestry(info, registry))


@rule("SIM901", "undeclared-snapshot-state", SIM_PATH_PACKAGES,
      "every self.x assigned in a snapshot-protocol class's __init__ "
      "must be declared in SNAPSHOT_FIELDS or SNAPSHOT_EXEMPT")
def check_undeclared_snapshot_state(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    registry = _registry(modules)
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = registry.get(node.name)
        if info is None or info.module is not module:
            continue
        if not _in_protocol(info, registry):
            continue
        declared: Set[str] = set()
        for entry in _ancestry(info, registry):
            declared.update(entry.fields)
            declared.update(entry.exempt)
        for name, line in sorted(info.init_assigns.items(),
                                 key=lambda item: item[1]):
            if name in declared or name in info.auto_exempt:
                continue
            found.append(make_violation(
                _rule("SIM901"), module, line,
                f"{node.name}.__init__ assigns self.{name} but declares "
                "it in neither SNAPSHOT_FIELDS nor SNAPSHOT_EXEMPT; "
                "undeclared state silently escapes every checkpoint and "
                "a resumed run diverges — decide its snapshot story",
            ))
    return found


@rule("SIM902", "phantom-snapshot-field", SIM_PATH_PACKAGES,
      "every name in SNAPSHOT_FIELDS/SNAPSHOT_EXEMPT must be assigned "
      "somewhere in the declaring class or its ancestors")
def check_phantom_snapshot_field(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    registry = _registry(modules)
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = registry.get(node.name)
        if info is None or info.module is not module or not info.declares:
            continue
        assigned: Set[str] = set()
        for entry in _ancestry(info, registry):
            assigned.update(entry.assigned_anywhere)
        for name in info.fields + info.exempt:
            if name in assigned:
                continue
            found.append(make_violation(
                _rule("SIM902"), module, info.decl_lines.get(name, node),
                f"{node.name} declares {name!r} but never assigns "
                f"self.{name} anywhere in the class or its ancestors; a "
                "phantom field is a typo hiding real state from the "
                "checkpoint, or dead weight that makes the first "
                "snapshot cut raise",
            ))
    return found
