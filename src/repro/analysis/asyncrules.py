"""SIM6xx (cont.) — event-loop discipline for the sweep service.

:mod:`repro.serve.server` is the one place in the tree where an asyncio
event loop multiplexes many clients over a single thread.  A blocking
call on that thread — a file read, a ``time.sleep``, an flock-guarded
WAL transaction — stalls *every* connected client at once, and does it
silently: the service still works, it is just mysteriously slow under
exactly the multi-client load it exists to serve.  The module's own
contract is that nothing on the event loop touches a file (blocking
work is offloaded with ``asyncio.to_thread``); this rule makes the
contract machine-checked instead of a docstring promise.

* SIM604 ``blocking-in-async`` — a call to a known-blocking API inside
  the body of an ``async def`` in :mod:`repro.serve`: sync file I/O
  (builtin ``open``, ``Path.read_text``/``write_text``/``read_bytes``/
  ``write_bytes``, ``os.fsync``/``os.replace``), ``time.sleep``,
  ``subprocess.run``/``Popen``/``check_*``, and ``fcntl.flock``/
  ``lockf``.  Calls inside *nested* ``def``/``lambda`` bodies are not
  flagged — those run wherever the function is later invoked, which in
  this package means a ``to_thread`` worker (and offloading is
  invisible to the rule precisely because ``asyncio.to_thread(fn, …)``
  passes ``fn`` uncalled).  A genuinely non-blocking use — e.g. probing
  an in-memory fake in a test — carries an
  ``# simlint: allow[SIM604] <reason>`` justification.

* SIM605 ``unbounded-queue`` — constructing an unbounded buffer in
  :mod:`repro.serve`: ``asyncio.Queue()`` (or ``queue.Queue``/
  ``LifoQueue``/``PriorityQueue``) without a ``maxsize``, or a
  ``deque()`` without a ``maxlen``.  A service that buffers without
  bound converts overload into memory growth — the failure mode
  admission control exists to prevent — so every buffer either states
  its bound or carries an ``# simlint: allow[SIM605] <reason>``
  justifying *why* its growth is bounded elsewhere (e.g. a per-
  connection outbox capped by the admitted submission size).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence

from repro.analysis.contract import _rule
from repro.analysis.core import SourceModule, Violation, make_violation, rule

#: Attribute calls that block regardless of what they are called on:
#: pathlib file I/O reads the whole file on the calling thread.
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: module-qualified calls (``value.attr``) that block the caller.
_BLOCKING_QUALIFIED = frozenset({
    ("time", "sleep"),
    ("os", "fsync"),
    ("os", "replace"),
    ("fcntl", "flock"),
    ("fcntl", "lockf"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
})


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` blocks the event loop, or None when it does not."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open() performs sync file I/O"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _BLOCKING_METHODS:
        return f".{func.attr}() performs sync file I/O"
    if isinstance(func.value, ast.Name):
        pair = (func.value.id, func.attr)
        if pair in _BLOCKING_QUALIFIED:
            dotted = ".".join(pair)
            if pair[0] == "time":
                return f"{dotted}() stalls the loop outright"
            if pair[0] == "subprocess":
                return f"{dotted}() blocks on a child process"
            if pair[0] == "fcntl":
                return f"{dotted}() can wait on another process's lock"
            return f"{dotted}() performs sync file I/O"
    return None


def _direct_body(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes executing *on the event loop* when ``fn`` runs.

    Descends the whole body except into nested ``def``/``async def``/
    ``lambda`` — their bodies execute wherever they are later called
    (in this package, a ``to_thread`` worker), and a nested ``async
    def`` is visited separately by the outer walk anyway.
    """
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


#: Queue classes whose constructor takes ``maxsize`` (0 = unbounded).
_QUEUE_TYPES = frozenset({"Queue", "LifoQueue", "PriorityQueue"})

#: Modules the queue/deque constructors are expected to hang off.
_QUEUE_MODULES = frozenset({"asyncio", "queue", "collections"})


def _unbounded_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` builds an unbounded buffer, or None when it doesn't."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
    elif (isinstance(func, ast.Attribute)
          and isinstance(func.value, ast.Name)
          and func.value.id in _QUEUE_MODULES):
        name = func.attr
    else:
        return None
    if name == "deque":
        # maxlen is the second positional or the keyword.
        if len(call.args) >= 2 or any(
                kw.arg == "maxlen" for kw in call.keywords):
            return None
        return "deque() without maxlen"
    if name in _QUEUE_TYPES:
        # maxsize is the first positional or the keyword.
        if call.args or any(kw.arg == "maxsize" for kw in call.keywords):
            return None
        return f"{name}() without maxsize"
    return None


@rule("SIM605", "unbounded-queue", ("serve",),
      "buffers in repro.serve must state their bound: asyncio/queue "
      "Queues take maxsize, deques take maxlen; a bound enforced "
      "elsewhere needs an allow[] justification")
def check_unbounded_queue(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        reason = _unbounded_reason(node)
        if reason is None:
            continue
        found.append(make_violation(
            _rule("SIM605"), module, node,
            f"{reason} buffers without bound, turning overload into "
            "silent memory growth; pass an explicit bound or justify "
            "with allow[SIM605] why growth is capped elsewhere",
        ))
    return found


@rule("SIM604", "blocking-in-async", ("serve",),
      "async def bodies in repro.serve must not call blocking APIs "
      "(sync file I/O, time.sleep, subprocess, flock); offload with "
      "asyncio.to_thread")
def check_blocking_in_async(
    module: SourceModule, modules: Sequence[SourceModule]
) -> List[Violation]:
    found = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for inner in _direct_body(node):
            if not isinstance(inner, ast.Call):
                continue
            reason = _blocking_reason(inner)
            if reason is None:
                continue
            found.append(make_violation(
                _rule("SIM604"), module, inner,
                f"{reason} inside async def {node.name}(), stalling "
                "every client sharing the event loop; offload it with "
                "asyncio.to_thread (or run_in_executor)",
            ))
    return found
