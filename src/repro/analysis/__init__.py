"""simlint — static contract & determinism analysis for the MicroLib model.

Run it as a module::

    PYTHONPATH=src python -m repro.analysis              # analyze src/repro
    python -m repro.analysis path/to/file.py --format json
    python -m repro.analysis --list-rules

Exit status: 0 clean, 1 violations found, 2 usage error.

The rule families (catalogue in ``docs/analysis.md``):

* **SIM0xx** analyzer hygiene — parse errors, bare allowlist comments.
* **SIM1xx** mechanism-contract conformance (``repro.mechanisms``).
* **SIM2xx** determinism lint (sim-path packages + ``workloads``).
* **SIM3xx** RunSpec/config purity (``repro.exec.runspec``, ``repro.core.config``).
* **SIM4xx** port/stat wiring (whole tree).
* **SIM5xx** observability wiring (whole tree) — orphan stats, dynamic
  span names.
* **SIM6xx** robustness discipline (sim path + ``repro.exec``) —
  swallowed exceptions that should propagate or become ``FailedRun``s;
  plus event-loop discipline for ``repro.serve`` — blocking calls in
  ``async def`` bodies that would stall every connected client.
* **SIM7xx** hot-path performance lint (sim-path packages) — allocation,
  unhoisted attribute chains, and per-iteration frames inside functions
  marked ``@hotpath``.
* **SIM8xx** fast-path guard completeness (``repro.cpu``) — the
  generated trace-speculation code is re-emitted for every machine shape
  and proven to guard every state it touches, replay the slow path's
  writes in order, and bake only fresh constants.
* **SIM9xx** snapshot completeness (sim-path packages) — every
  ``self.x`` a checkpoint-protocol class assigns in ``__init__`` must
  land in ``SNAPSHOT_FIELDS`` or ``SNAPSHOT_EXEMPT``, and every
  declared name must exist, so mid-run checkpoints can never silently
  omit state (:mod:`repro.exec.checkpoint`).

The same invariants have a *runtime* twin: setting ``REPRO_SANITIZE=1``
arms cheap assertions in the kernel and the cache hierarchy (see
``repro.sanitize``), so what the static pass proves about the source the
dynamic pass re-checks about the behaviour.
"""

from __future__ import annotations

# Importing the rule modules registers their rules.
from repro.analysis import (  # noqa: F401
    asyncrules,
    contract,
    determinism,
    fastpath,
    hotpath,
    obsrules,
    purity,
    robustness,
    snapshot,
    wiring,
)
from repro.analysis.core import (
    Rule,
    SourceModule,
    Violation,
    all_rules,
    analyze_modules,
    analyze_paths,
    load_paths,
    rule,
)

__all__ = [
    "Rule",
    "SourceModule",
    "Violation",
    "all_rules",
    "analyze_modules",
    "analyze_paths",
    "load_paths",
    "rule",
]
