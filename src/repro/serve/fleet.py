"""The fleet's shared brain: a WAL-backed work queue and lease book.

Everything N independent worker processes (potentially on different
hosts sharing the cache directory) need to coordinate lives in two
JSON-lines WALs under ``<cache>/serve/`` plus one lock file:

``queue.jsonl``
    The work itself.  ``enqueue`` records carry the full spec payload
    (the :meth:`~repro.exec.runspec.RunSpec.describe` dict, hash-
    verified on read) and optionally a ``deadline``; ``done``/``failed``
    records resolve a spec; a ``requeue`` record re-opens a resolved
    spec whose promised store entry has gone missing; a ``quarantine``
    record resolves a poison spec fleet-wide (see below); an
    ``expired`` record resolves a spec whose deadline passed before any
    worker could start it.  The server appends ``enqueue``/``requeue``/
    ``expired``; workers append ``done``/``failed``; whichever claimant
    trips the lease bound appends ``quarantine``; the server tails the
    file to learn of resolutions.

``leases.jsonl``
    Who is working on what.  ``lease`` records carry the worker id, a
    monotonically increasing per-spec lease ``count`` and a wall-clock
    ``expires`` deadline; ``renew`` extends a live lease (appended by
    the worker's heartbeat thread while it simulates, honoured only
    from the lease's own holder), ``release`` ends one deliberately,
    ``expire`` records a reclaim.  Replay is last-record-wins per spec,
    corruption-tolerant like every WAL in the tree.

``fleet.lock``
    An advisory ``flock`` serialising every read-decide-append
    transaction (claiming, enqueueing, resolving).  The lock is held
    only for the transaction — never across a simulation — and a
    killed holder releases it with its file handle, so a dead worker
    can never wedge the fleet.

The claim protocol is what makes ``kill-worker`` chaos provably
converge: a worker's lease record is fsync'd *before* it starts
simulating, so a worker killed at any point leaves either (a) no
lease — the spec is simply free — or (b) a live lease that expires
after its TTL and is reclaimed by the next claimant with ``count + 1``.
The injected kill (:func:`repro.exec.faults.should_kill_worker`) fires
only on a spec's first lease, so the reclaimed lease always runs to
completion — the same one-shot schedule shape that makes
``kill-orchestrator`` resume loops terminate.

**Poison quarantine** closes the hole that one-shot schedules leave
open in real life: a spec that *deterministically* kills every worker
that leases it (a simulator bug, a pathological configuration) would
crash-loop the fleet forever — lease, die, expire, reclaim, die, … .
The lease book already counts every lease a spec has ever burned, so
the claim transaction enforces a bound: a claimant that would grant a
lease past ``max_leases`` (derived from
:attr:`repro.exec.policy.RetryPolicy.max_leases` — one more than the
retry budget, so a single arbitrary worker death never trips it)
instead appends a durable ``quarantine`` record resolving the spec
fleet-wide as a ``FailedRun(kind="poison")`` hole.  Subscribers get the
hole streamed like any failure; the fleet moves on; the spec runs again
only after an explicit ``quarantine clear`` (a ``requeue`` plus a lease
``reset`` so its count restarts from zero).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.exec.policy import FailedRun, RetryPolicy
from repro.serve import wal

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Default lease TTL in seconds.  Workers renew their lease from a
#: heartbeat thread at half the TTL while a simulation runs, so the TTL
#: bounds how long a *dead* worker's spec stays unclaimable, not how
#: long a simulation may take.  It still must comfortably exceed one
#: renew interval under load: a lease that lapses mid-simulation gets
#: the spec re-leased and simulated twice (results are identical —
#: specs are pure — but the dedupe guarantee is per *healthy* fleet).
DEFAULT_LEASE_TTL = 60.0

KIND_ENQUEUE = "enqueue"
KIND_REQUEUE = "requeue"
KIND_DONE = "done"
KIND_FAILED = "failed"
KIND_QUARANTINE = "quarantine"
KIND_EXPIRED = "expired"
KIND_LEASE = "lease"
KIND_RENEW = "renew"
KIND_RELEASE = "release"
KIND_EXPIRE = "expire"
KIND_RESET = "reset"


@dataclass(frozen=True)
class Claim:
    """One successful claim: the spec to run and its lease pedigree."""

    spec_hash: str
    payload: Dict[str, Any]
    lease_count: int
    expires: float
    #: Absolute wall-clock deadline the submission travelled with, or
    #: None.  The worker checks it *before* simulating; a spec claimed
    #: in time may legitimately finish after it.
    deadline: Optional[float] = None


@dataclass
class FleetSnapshot:
    """What the replayed WALs say about the fleet right now."""

    #: spec hash -> enqueue payload, in enqueue order (insertion-ordered).
    enqueued: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: spec hash -> its ``done`` record.
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: spec hash -> persisted FailedRun.
    failures: Dict[str, FailedRun] = field(default_factory=dict)
    #: spec hash -> (worker, count, expires) for live leases.
    leases: Dict[str, Tuple[str, int, float]] = field(default_factory=dict)
    #: spec hash -> total leases ever granted (feeds the next count).
    lease_counts: Dict[str, int] = field(default_factory=dict)
    #: Hashes resolved by a durable ``quarantine`` record (their
    #: FailedRun also sits in :attr:`failures`, kind ``poison``).
    quarantined: Set[str] = field(default_factory=set)
    #: Hashes resolved by a deadline-``expired`` record (their
    #: FailedRun also sits in :attr:`failures`, kind ``timeout``).
    expired: Set[str] = field(default_factory=set)
    #: spec hash -> absolute deadline its submission travelled with.
    deadlines: Dict[str, float] = field(default_factory=dict)
    corrupt_lines: int = 0

    @property
    def resolved(self) -> int:
        return len(self.done) + len(self.failures)

    def pending(self) -> List[str]:
        """Unresolved spec hashes, in enqueue order."""
        return [spec for spec in self.enqueued
                if spec not in self.done and spec not in self.failures]

    @property
    def drained(self) -> bool:
        """Every enqueued spec resolved and no lease still live."""
        return not self.pending() and not self.leases


class Fleet:
    """Transactions over the queue and lease book, under ``fleet.lock``."""

    def __init__(
        self,
        root: Union[str, Path],
        ttl: float = DEFAULT_LEASE_TTL,
        max_leases: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.ttl = float(ttl)
        #: Leases a spec may burn before the claim transaction
        #: quarantines it as poison.  Defaults to the retry policy's
        #: derivation (one more than the attempt budget).
        self.max_leases = (RetryPolicy().max_leases
                           if max_leases is None else int(max_leases))
        self.queue_path = self.root / "queue.jsonl"
        self.lease_path = self.root / "leases.jsonl"
        self.lock_path = self.root / "fleet.lock"

    # -- locking --------------------------------------------------------------

    def _locked(self) -> "_FleetLock":
        return _FleetLock(self.lock_path)

    # -- state ----------------------------------------------------------------

    def snapshot(self) -> FleetSnapshot:
        """Replay both WALs into one consistent view.

        Callers that go on to append based on what they see must hold
        the lock around snapshot *and* append (every mutator below
        does); a bare snapshot is for observers (progress, tests,
        drain checks) and may be momentarily stale.
        """
        snap = FleetSnapshot()
        queue_records, queue_corrupt = wal.replay(self.queue_path)
        for record in queue_records:
            kind = record.get("kind")
            spec = record.get("spec", "")
            if kind == KIND_ENQUEUE and spec:
                payload = record.get("payload")
                if isinstance(payload, dict):
                    snap.enqueued.setdefault(spec, payload)
                    deadline = record.get("deadline")
                    if isinstance(deadline, (int, float)):
                        snap.deadlines.setdefault(spec, float(deadline))
            elif kind == KIND_REQUEUE and spec:
                # A broken promise undone: the spec's resolution is
                # erased so it becomes pending (and claimable) again.
                # Requeued work carries no deadline — the original one
                # already had its chance to expire the spec.
                payload = record.get("payload")
                if isinstance(payload, dict):
                    snap.enqueued.setdefault(spec, payload)
                snap.done.pop(spec, None)
                snap.failures.pop(spec, None)
                snap.quarantined.discard(spec)
                snap.expired.discard(spec)
                snap.deadlines.pop(spec, None)
            elif kind == KIND_DONE and spec:
                snap.done[spec] = record
                snap.failures.pop(spec, None)
                snap.quarantined.discard(spec)
                snap.expired.discard(spec)
            elif kind in (KIND_FAILED, KIND_QUARANTINE, KIND_EXPIRED) and spec:
                failure = record.get("failure")
                if isinstance(failure, dict):
                    try:
                        snap.failures[spec] = FailedRun.from_dict(failure)
                        snap.done.pop(spec, None)
                        if kind == KIND_QUARANTINE:
                            snap.quarantined.add(spec)
                        elif kind == KIND_EXPIRED:
                            snap.expired.add(spec)
                    except TypeError:
                        queue_corrupt += 1
        lease_records, lease_corrupt = wal.replay(self.lease_path)
        for record in lease_records:
            kind = record.get("kind")
            spec = record.get("spec", "")
            if not spec:
                continue
            if kind == KIND_LEASE:
                count = int(record.get("count", 1))
                snap.leases[spec] = (
                    str(record.get("worker", "")),
                    count,
                    float(record.get("expires", 0.0)),
                )
                snap.lease_counts[spec] = max(
                    snap.lease_counts.get(spec, 0), count
                )
            elif kind == KIND_RENEW and spec in snap.leases:
                worker, count, _old = snap.leases[spec]
                # Only the lease's own holder can extend it: a stale
                # heartbeat from a worker that lost the lease must not
                # stretch the reclaimant's deadline.
                if str(record.get("worker", "")) == worker:
                    snap.leases[spec] = (
                        worker, count, float(record.get("expires", 0.0))
                    )
            elif kind in (KIND_RELEASE, KIND_EXPIRE):
                snap.leases.pop(spec, None)
            elif kind == KIND_RESET:
                # ``quarantine clear`` absolution: the spec's lease
                # pedigree restarts from zero so the cleared run gets a
                # full budget again.
                snap.leases.pop(spec, None)
                snap.lease_counts.pop(spec, None)
        snap.corrupt_lines = queue_corrupt + lease_corrupt
        return snap

    # -- transactions ----------------------------------------------------------

    def enqueue(self, payloads: Dict[str, Dict[str, Any]],
                deadline: Optional[float] = None) -> List[str]:
        """Add specs to the queue; returns the hashes actually appended.

        ``payloads`` maps content hash to describe-payload.  Hashes
        already enqueued (resolved or not) are skipped — the queue is a
        set with an order, and re-submitting shared work must not grow
        it.  Callers must treat a skipped hash as already owned by the
        fleet and consult a snapshot for its fate: it may be pending
        (a worker will resolve it), or already resolved (no worker will
        touch it again — see :meth:`requeue` for re-opening one whose
        promised result has gone missing).

        ``deadline`` (absolute wall-clock seconds) travels with each
        appended record; pending work past it resolves as a
        ``kind="timeout"`` hole instead of being simulated.
        """
        appended: List[str] = []
        with self._locked():
            snap = self.snapshot()
            for spec, payload in payloads.items():
                if spec in snap.enqueued:
                    continue
                if deadline is None:
                    wal.append_record(self.queue_path, KIND_ENQUEUE,
                                      spec=spec, payload=payload)
                else:
                    wal.append_record(self.queue_path, KIND_ENQUEUE,
                                      spec=spec, payload=payload,
                                      deadline=deadline)
                appended.append(spec)
        return appended

    def requeue(self, payloads: Dict[str, Dict[str, Any]]) -> List[str]:
        """Re-open resolved specs; returns the hashes actually reopened.

        A ``done`` record promises the result is re-readable from the
        store.  When that promise breaks (the entry was pruned or
        rotted), the spec must run again — but resolved specs are never
        pending, so a plain :meth:`enqueue` cannot revive them.  A
        ``requeue`` record erases the spec's resolution on replay and
        (re)carries its payload, making it claimable afresh.  Specs
        that are already pending are skipped — re-opening in-flight
        work would double-simulate it.
        """
        reopened: List[str] = []
        with self._locked():
            snap = self.snapshot()
            pending = set(snap.pending())
            for spec, payload in payloads.items():
                if spec in pending:
                    continue
                wal.append_record(self.queue_path, KIND_REQUEUE,
                                  spec=spec, payload=payload)
                reopened.append(spec)
        return reopened

    def claim(self, worker: str) -> Optional[Claim]:
        """Lease the first free pending spec to ``worker``; None if none.

        One transaction under the lock: replay, reclaim every expired
        lease (``expire`` records make the reclaim durable and
        auditable), then lease the first pending spec that is neither
        resolved nor still validly leased.  The lease record is fsync'd
        before the lock is released, so by the time the worker starts
        simulating, every other fleet member can see who owns the spec
        and until when.

        The claim transaction is also where the fleet's two safety
        bounds bite, because every claimant passes through it:

        * a pending spec whose submission **deadline** has passed is
          resolved as a ``kind="timeout"`` hole (``expired`` record)
          instead of being leased — work nobody wants anymore is never
          simulated;
        * a pending spec that would burn a lease past
          :attr:`max_leases` is resolved as a ``kind="poison"`` hole
          (durable ``quarantine`` record) — a spec that kills every
          worker that touches it crash-loops into the bound, not
          forever.
        """
        with self._locked():
            snap = self.snapshot()
            now = time.time()
            for spec, (_owner, count, expires) in list(snap.leases.items()):
                if expires <= now:
                    wal.append_record(self.lease_path, KIND_EXPIRE,
                                      spec=spec, count=count)
                    del snap.leases[spec]
            for spec in snap.pending():
                if spec in snap.leases:
                    continue
                deadline = snap.deadlines.get(spec)
                if deadline is not None and deadline <= now:
                    self._append_expired(snap, spec)
                    continue
                count = snap.lease_counts.get(spec, 0) + 1
                if count > self.max_leases:
                    self._append_quarantine(snap, spec, count - 1)
                    continue
                expires = now + self.ttl
                wal.append_record(
                    self.lease_path, KIND_LEASE, spec=spec, worker=worker,
                    count=count, expires=expires,
                )
                return Claim(
                    spec_hash=spec,
                    payload=snap.enqueued[spec],
                    lease_count=count,
                    expires=expires,
                    deadline=deadline,
                )
        return None

    def _append_expired(self, snap: FleetSnapshot, spec: str) -> FailedRun:
        """Resolve one past-deadline spec (caller holds the lock)."""
        payload = snap.enqueued.get(spec, {})
        failure = FailedRun(
            spec_hash=spec,
            benchmark=str(payload.get("benchmark", "?")),
            mechanism=str(payload.get("mechanism", "?")),
            attempts=snap.lease_counts.get(spec, 0),
            error="submission deadline passed before a worker could "
                  "start this spec",
            kind="timeout",
        )
        wal.append_record(self.queue_path, KIND_EXPIRED, spec=spec,
                          failure=failure.describe())
        return failure

    def _append_quarantine(self, snap: FleetSnapshot, spec: str,
                           burned: int) -> FailedRun:
        """Quarantine one crash-looping spec (caller holds the lock)."""
        payload = snap.enqueued.get(spec, {})
        failure = FailedRun(
            spec_hash=spec,
            benchmark=str(payload.get("benchmark", "?")),
            mechanism=str(payload.get("mechanism", "?")),
            attempts=burned,
            error=f"quarantined: {burned} consecutive leases died without "
                  "resolving this spec (crash loop); re-attempt with "
                  "--retry-failed or `quarantine clear`",
            kind="poison",
        )
        wal.append_record(self.queue_path, KIND_QUARANTINE, spec=spec,
                          failure=failure.describe())
        return failure

    def renew(self, spec_hash: str, worker: str) -> Optional[float]:
        """Extend ``worker``'s live lease on ``spec_hash``.

        Returns the new deadline, or ``None`` when ``worker`` no longer
        holds the lease (it lapsed and was reclaimed, or was released).
        The ownership check runs under the lock so a stale heartbeat
        can never append a renew record against the reclaimant's lease;
        replay enforces the same rule for records already on disk.
        """
        with self._locked():
            snap = self.snapshot()
            lease = snap.leases.get(spec_hash)
            if lease is None or lease[0] != worker:
                return None
            deadline = snap.deadlines.get(spec_hash)
            if deadline is not None and deadline <= time.time():
                # Renewal respects the submission deadline: a worker
                # still heartbeating past it gets no extension — the
                # lease lapses on schedule and the next claimant
                # resolves the spec as expired.
                return None
            expires = time.time() + self.ttl
            wal.append_record(self.lease_path, KIND_RENEW, spec=spec_hash,
                              worker=worker, expires=expires)
        return expires

    def release(self, spec_hash: str, worker: str) -> None:
        """End ``worker``'s lease without resolving the spec.

        The clean way out of a failed *write* (a full disk, say): the
        simulation succeeded but neither store entry nor ``done``
        record could land, so the spec must go back on the market — now,
        not after a TTL lapse.
        """
        with self._locked():
            wal.append_record(self.lease_path, KIND_RELEASE, spec=spec_hash,
                              worker=worker)

    def mark_done(self, spec_hash: str, worker: str, seconds: float,
                  lease_count: int = 0) -> None:
        """Resolve a spec: durably record completion, release the lease.

        The caller stores the result **first** (same write order as the
        executor's journal): a ``done`` record promises the result is
        re-readable from the store, so the promise must land last.

        ``lease_count`` opts the ``done`` append into the one-shot
        ``disk-full`` chaos schedule (first lease only); the append
        fails clean (no torn record) and the caller releases the lease
        for a prompt reclaim.
        """
        with self._locked():
            wal.append_record(self.queue_path, KIND_DONE, spec=spec_hash,
                              worker=worker, seconds=round(seconds, 6),
                              fault_key=f"done:{spec_hash}",
                              fault_attempt=lease_count)
            wal.append_record(self.lease_path, KIND_RELEASE, spec=spec_hash,
                              worker=worker)

    def mark_failed(self, failure: FailedRun, worker: str) -> None:
        """Resolve a spec as failed; subscribers receive the hole."""
        with self._locked():
            wal.append_record(self.queue_path, KIND_FAILED,
                              spec=failure.spec_hash,
                              failure=failure.describe())
            wal.append_record(self.lease_path, KIND_RELEASE,
                              spec=failure.spec_hash, worker=worker)

    def mark_expired(self, spec_hash: str, worker: str) -> Optional[FailedRun]:
        """Resolve a claimed spec whose deadline passed before it ran.

        The worker's half of deadline propagation: it checks the
        deadline *after* claiming but *before* simulating, and hands
        the spec back as a ``kind="timeout"`` hole.  Returns the
        failure, or None when the spec was already resolved.
        """
        with self._locked():
            snap = self.snapshot()
            failure = None
            if spec_hash in snap.pending():
                failure = self._append_expired(snap, spec_hash)
            wal.append_record(self.lease_path, KIND_RELEASE, spec=spec_hash,
                              worker=worker)
        return failure

    def expire_deadlines(self, now: Optional[float] = None) -> List[str]:
        """Resolve every pending, unleased spec whose deadline passed.

        The server's half of deadline propagation: called from the
        watcher so undispatched work expires even when no worker ever
        shows up to trip the check in :meth:`claim`.  Returns the
        hashes expired.
        """
        expired: List[str] = []
        with self._locked():
            snap = self.snapshot()
            moment = time.time() if now is None else now
            for spec in snap.pending():
                if spec in snap.leases:
                    continue
                deadline = snap.deadlines.get(spec)
                if deadline is not None and deadline <= moment:
                    self._append_expired(snap, spec)
                    expired.append(spec)
        return expired

    def clear_quarantine(
        self, hashes: Optional[Iterable[str]] = None
    ) -> List[str]:
        """Re-open quarantined specs with a fresh lease budget.

        Appends a ``requeue`` (erasing the poison resolution) plus a
        lease ``reset`` (restarting the spec's lease count from zero)
        for each quarantined hash — without the reset, the very next
        claim would re-trip the quarantine bound.  ``hashes`` limits
        the clear; None clears everything quarantined.  Returns the
        hashes cleared.
        """
        cleared: List[str] = []
        with self._locked():
            snap = self.snapshot()
            targets = snap.quarantined if hashes is None else (
                set(hashes) & snap.quarantined)
            for spec in sorted(targets):
                payload = snap.enqueued.get(spec)
                if payload is None:
                    continue
                wal.append_record(self.queue_path, KIND_REQUEUE,
                                  spec=spec, payload=payload)
                wal.append_record(self.lease_path, KIND_RESET, spec=spec)
                cleared.append(spec)
        return cleared

    def absolve(self, spec_hash: str) -> bool:
        """Retire a quarantine record whose spec later completed.

        fsck's ``--prune`` repair: when a quarantined hash has a sound
        store entry after all (cleared and re-run through another
        journal, or hand-repaired), the poison verdict is stale.  A
        ``done`` record supersedes it — the promise it makes (the
        result is re-readable) is exactly what fsck just verified — and
        a lease ``reset`` retires the crash-loop pedigree.
        """
        with self._locked():
            snap = self.snapshot()
            if spec_hash not in snap.quarantined:
                return False
            wal.append_record(self.queue_path, KIND_DONE, spec=spec_hash,
                              worker="fsck", seconds=0.0)
            wal.append_record(self.lease_path, KIND_RESET, spec=spec_hash)
        return True


class _FleetLock:
    """Context manager holding an exclusive ``flock`` on the lock file.

    Where the platform has no ``fcntl`` the lock degrades to a no-op —
    single-host, single-worker use still works; a real fleet needs
    POSIX semantics (and a shared filesystem whose ``flock`` is
    honest).
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle = None

    def __enter__(self) -> "_FleetLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a+")
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._handle is not None:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
