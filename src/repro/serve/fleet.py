"""The fleet's shared brain: a WAL-backed work queue and lease book.

Everything N independent worker processes (potentially on different
hosts sharing the cache directory) need to coordinate lives in two
JSON-lines WALs under ``<cache>/serve/`` plus one lock file:

``queue.jsonl``
    The work itself.  ``enqueue`` records carry the full spec payload
    (the :meth:`~repro.exec.runspec.RunSpec.describe` dict, hash-
    verified on read), ``done``/``failed`` records resolve a spec, and
    a ``requeue`` record re-opens a resolved spec whose promised store
    entry has gone missing.  The server appends ``enqueue``/``requeue``;
    workers append ``done``/``failed``; the server tails the file to
    learn of resolutions.

``leases.jsonl``
    Who is working on what.  ``lease`` records carry the worker id, a
    monotonically increasing per-spec lease ``count`` and a wall-clock
    ``expires`` deadline; ``renew`` extends a live lease (appended by
    the worker's heartbeat thread while it simulates, honoured only
    from the lease's own holder), ``release`` ends one deliberately,
    ``expire`` records a reclaim.  Replay is last-record-wins per spec,
    corruption-tolerant like every WAL in the tree.

``fleet.lock``
    An advisory ``flock`` serialising every read-decide-append
    transaction (claiming, enqueueing, resolving).  The lock is held
    only for the transaction — never across a simulation — and a
    killed holder releases it with its file handle, so a dead worker
    can never wedge the fleet.

The claim protocol is what makes ``kill-worker`` chaos provably
converge: a worker's lease record is fsync'd *before* it starts
simulating, so a worker killed at any point leaves either (a) no
lease — the spec is simply free — or (b) a live lease that expires
after its TTL and is reclaimed by the next claimant with ``count + 1``.
The injected kill (:func:`repro.exec.faults.should_kill_worker`) fires
only on a spec's first lease, so the reclaimed lease always runs to
completion — the same one-shot schedule shape that makes
``kill-orchestrator`` resume loops terminate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exec.policy import FailedRun
from repro.serve import wal

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Default lease TTL in seconds.  Workers renew their lease from a
#: heartbeat thread at half the TTL while a simulation runs, so the TTL
#: bounds how long a *dead* worker's spec stays unclaimable, not how
#: long a simulation may take.  It still must comfortably exceed one
#: renew interval under load: a lease that lapses mid-simulation gets
#: the spec re-leased and simulated twice (results are identical —
#: specs are pure — but the dedupe guarantee is per *healthy* fleet).
DEFAULT_LEASE_TTL = 60.0

KIND_ENQUEUE = "enqueue"
KIND_REQUEUE = "requeue"
KIND_DONE = "done"
KIND_FAILED = "failed"
KIND_LEASE = "lease"
KIND_RENEW = "renew"
KIND_RELEASE = "release"
KIND_EXPIRE = "expire"


@dataclass(frozen=True)
class Claim:
    """One successful claim: the spec to run and its lease pedigree."""

    spec_hash: str
    payload: Dict[str, Any]
    lease_count: int
    expires: float


@dataclass
class FleetSnapshot:
    """What the replayed WALs say about the fleet right now."""

    #: spec hash -> enqueue payload, in enqueue order (insertion-ordered).
    enqueued: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: spec hash -> its ``done`` record.
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: spec hash -> persisted FailedRun.
    failures: Dict[str, FailedRun] = field(default_factory=dict)
    #: spec hash -> (worker, count, expires) for live leases.
    leases: Dict[str, Tuple[str, int, float]] = field(default_factory=dict)
    #: spec hash -> total leases ever granted (feeds the next count).
    lease_counts: Dict[str, int] = field(default_factory=dict)
    corrupt_lines: int = 0

    @property
    def resolved(self) -> int:
        return len(self.done) + len(self.failures)

    def pending(self) -> List[str]:
        """Unresolved spec hashes, in enqueue order."""
        return [spec for spec in self.enqueued
                if spec not in self.done and spec not in self.failures]

    @property
    def drained(self) -> bool:
        """Every enqueued spec resolved and no lease still live."""
        return not self.pending() and not self.leases


class Fleet:
    """Transactions over the queue and lease book, under ``fleet.lock``."""

    def __init__(
        self,
        root: Union[str, Path],
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.root = Path(root)
        self.ttl = float(ttl)
        self.queue_path = self.root / "queue.jsonl"
        self.lease_path = self.root / "leases.jsonl"
        self.lock_path = self.root / "fleet.lock"

    # -- locking --------------------------------------------------------------

    def _locked(self) -> "_FleetLock":
        return _FleetLock(self.lock_path)

    # -- state ----------------------------------------------------------------

    def snapshot(self) -> FleetSnapshot:
        """Replay both WALs into one consistent view.

        Callers that go on to append based on what they see must hold
        the lock around snapshot *and* append (every mutator below
        does); a bare snapshot is for observers (progress, tests,
        drain checks) and may be momentarily stale.
        """
        snap = FleetSnapshot()
        queue_records, queue_corrupt = wal.replay(self.queue_path)
        for record in queue_records:
            kind = record.get("kind")
            spec = record.get("spec", "")
            if kind == KIND_ENQUEUE and spec:
                payload = record.get("payload")
                if isinstance(payload, dict):
                    snap.enqueued.setdefault(spec, payload)
            elif kind == KIND_REQUEUE and spec:
                # A broken promise undone: the spec's resolution is
                # erased so it becomes pending (and claimable) again.
                payload = record.get("payload")
                if isinstance(payload, dict):
                    snap.enqueued.setdefault(spec, payload)
                snap.done.pop(spec, None)
                snap.failures.pop(spec, None)
            elif kind == KIND_DONE and spec:
                snap.done[spec] = record
                snap.failures.pop(spec, None)
            elif kind == KIND_FAILED and spec:
                failure = record.get("failure")
                if isinstance(failure, dict):
                    try:
                        snap.failures[spec] = FailedRun.from_dict(failure)
                        snap.done.pop(spec, None)
                    except TypeError:
                        queue_corrupt += 1
        lease_records, lease_corrupt = wal.replay(self.lease_path)
        for record in lease_records:
            kind = record.get("kind")
            spec = record.get("spec", "")
            if not spec:
                continue
            if kind == KIND_LEASE:
                count = int(record.get("count", 1))
                snap.leases[spec] = (
                    str(record.get("worker", "")),
                    count,
                    float(record.get("expires", 0.0)),
                )
                snap.lease_counts[spec] = max(
                    snap.lease_counts.get(spec, 0), count
                )
            elif kind == KIND_RENEW and spec in snap.leases:
                worker, count, _old = snap.leases[spec]
                # Only the lease's own holder can extend it: a stale
                # heartbeat from a worker that lost the lease must not
                # stretch the reclaimant's deadline.
                if str(record.get("worker", "")) == worker:
                    snap.leases[spec] = (
                        worker, count, float(record.get("expires", 0.0))
                    )
            elif kind in (KIND_RELEASE, KIND_EXPIRE):
                snap.leases.pop(spec, None)
        snap.corrupt_lines = queue_corrupt + lease_corrupt
        return snap

    # -- transactions ----------------------------------------------------------

    def enqueue(self, payloads: Dict[str, Dict[str, Any]]) -> List[str]:
        """Add specs to the queue; returns the hashes actually appended.

        ``payloads`` maps content hash to describe-payload.  Hashes
        already enqueued (resolved or not) are skipped — the queue is a
        set with an order, and re-submitting shared work must not grow
        it.  Callers must treat a skipped hash as already owned by the
        fleet and consult a snapshot for its fate: it may be pending
        (a worker will resolve it), or already resolved (no worker will
        touch it again — see :meth:`requeue` for re-opening one whose
        promised result has gone missing).
        """
        appended: List[str] = []
        with self._locked():
            snap = self.snapshot()
            for spec, payload in payloads.items():
                if spec in snap.enqueued:
                    continue
                wal.append_record(self.queue_path, KIND_ENQUEUE,
                                  spec=spec, payload=payload)
                appended.append(spec)
        return appended

    def requeue(self, payloads: Dict[str, Dict[str, Any]]) -> List[str]:
        """Re-open resolved specs; returns the hashes actually reopened.

        A ``done`` record promises the result is re-readable from the
        store.  When that promise breaks (the entry was pruned or
        rotted), the spec must run again — but resolved specs are never
        pending, so a plain :meth:`enqueue` cannot revive them.  A
        ``requeue`` record erases the spec's resolution on replay and
        (re)carries its payload, making it claimable afresh.  Specs
        that are already pending are skipped — re-opening in-flight
        work would double-simulate it.
        """
        reopened: List[str] = []
        with self._locked():
            snap = self.snapshot()
            pending = set(snap.pending())
            for spec, payload in payloads.items():
                if spec in pending:
                    continue
                wal.append_record(self.queue_path, KIND_REQUEUE,
                                  spec=spec, payload=payload)
                reopened.append(spec)
        return reopened

    def claim(self, worker: str) -> Optional[Claim]:
        """Lease the first free pending spec to ``worker``; None if none.

        One transaction under the lock: replay, reclaim every expired
        lease (``expire`` records make the reclaim durable and
        auditable), then lease the first pending spec that is neither
        resolved nor still validly leased.  The lease record is fsync'd
        before the lock is released, so by the time the worker starts
        simulating, every other fleet member can see who owns the spec
        and until when.
        """
        with self._locked():
            snap = self.snapshot()
            now = time.time()
            for spec, (_owner, count, expires) in list(snap.leases.items()):
                if expires <= now:
                    wal.append_record(self.lease_path, KIND_EXPIRE,
                                      spec=spec, count=count)
                    del snap.leases[spec]
            for spec in snap.pending():
                if spec in snap.leases:
                    continue
                count = snap.lease_counts.get(spec, 0) + 1
                expires = now + self.ttl
                wal.append_record(
                    self.lease_path, KIND_LEASE, spec=spec, worker=worker,
                    count=count, expires=expires,
                )
                return Claim(
                    spec_hash=spec,
                    payload=snap.enqueued[spec],
                    lease_count=count,
                    expires=expires,
                )
        return None

    def renew(self, spec_hash: str, worker: str) -> Optional[float]:
        """Extend ``worker``'s live lease on ``spec_hash``.

        Returns the new deadline, or ``None`` when ``worker`` no longer
        holds the lease (it lapsed and was reclaimed, or was released).
        The ownership check runs under the lock so a stale heartbeat
        can never append a renew record against the reclaimant's lease;
        replay enforces the same rule for records already on disk.
        """
        with self._locked():
            lease = self.snapshot().leases.get(spec_hash)
            if lease is None or lease[0] != worker:
                return None
            expires = time.time() + self.ttl
            wal.append_record(self.lease_path, KIND_RENEW, spec=spec_hash,
                              worker=worker, expires=expires)
        return expires

    def mark_done(self, spec_hash: str, worker: str, seconds: float) -> None:
        """Resolve a spec: durably record completion, release the lease.

        The caller stores the result **first** (same write order as the
        executor's journal): a ``done`` record promises the result is
        re-readable from the store, so the promise must land last.
        """
        with self._locked():
            wal.append_record(self.queue_path, KIND_DONE, spec=spec_hash,
                              worker=worker, seconds=round(seconds, 6))
            wal.append_record(self.lease_path, KIND_RELEASE, spec=spec_hash,
                              worker=worker)

    def mark_failed(self, failure: FailedRun, worker: str) -> None:
        """Resolve a spec as failed; subscribers receive the hole."""
        with self._locked():
            wal.append_record(self.queue_path, KIND_FAILED,
                              spec=failure.spec_hash,
                              failure=failure.describe())
            wal.append_record(self.lease_path, KIND_RELEASE,
                              spec=failure.spec_hash, worker=worker)


class _FleetLock:
    """Context manager holding an exclusive ``flock`` on the lock file.

    Where the platform has no ``fcntl`` the lock degrades to a no-op —
    single-host, single-worker use still works; a real fleet needs
    POSIX semantics (and a shared filesystem whose ``flock`` is
    honest).
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle = None

    def __enter__(self) -> "_FleetLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a+")
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._handle is not None:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
