"""Fleet WAL primitives: fsync'd appends, tolerant replay, tail reads.

The fleet's queue and lease book are JSON-lines write-ahead logs with
exactly the discipline of the sweep journal (:mod:`repro.exec.journal`)
and the benchmark ledger: one object per line, append-only, every
append a single ``write`` + ``flush`` + ``fsync`` so a crash corrupts
at most the final line, and replay that counts-and-skips what it cannot
parse instead of dying on it.  This module keeps those three moves —
append, replay, tail — in one place so the queue and the lease book
cannot drift apart in their crash semantics.

:func:`read_tail` is the server's live view: it parses only *complete*
(newline-terminated) lines past a byte offset and returns the new
offset, so a poller never half-reads the record a worker is mid-append
on — the torn prefix is simply picked up whole on the next poll.
"""

from __future__ import annotations

import errno
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exec.faults import active_plan

#: Bump when fleet record layouts change incompatibly; replays skip
#: records with a newer ``v`` rather than mis-parsing them.
FLEET_WAL_VERSION = 1


def _truncate_to(path: Path, size: int) -> None:
    """Best-effort roll a failed append back to the pre-append size.

    Replay would skip a torn final line anyway, but an *un*-terminated
    tear silently swallows the next successful append into the same
    garbage line — truncating restores the invariant that every byte in
    the WAL belongs to a complete, fsync'd record.
    """
    try:
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
    # simlint: allow[SIM601] rollback of a failed write is best-effort; the original OSError is re-raised by the caller
    except OSError:
        pass


def append_record(path: Union[str, Path], kind: str,
                  fault_key: Optional[str] = None,
                  fault_attempt: int = 1, **fields: Any) -> None:
    """Durably append one record; crash-safe at every byte.

    Callers serialise concurrent appenders themselves (the fleet holds
    ``fleet.lock`` across its read-decide-append transactions); this
    function only guarantees the append itself is atomic-on-crash.

    Fails *clean* on a full disk: any ``OSError`` mid-append truncates
    the WAL back to its pre-append size before re-raising, so no torn
    entry survives to corrupt the next writer's line.  ``fault_key``
    opts the append into the deterministic ``disk-full`` chaos schedule
    (one-shot: only ``fault_attempt == 1`` consults it), which tears the
    write mid-line exactly the way a real ENOSPC would.
    """
    record: Dict[str, Any] = {"v": FLEET_WAL_VERSION, "kind": kind}
    record.update(fields)
    line = json.dumps(record, sort_keys=True)
    assert "\n" not in line  # one record is always exactly one line
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    plan = active_plan()
    torn = (fault_key is not None and fault_attempt == 1
            and plan is not None
            and plan.decide("disk-full", fault_key, 1))
    try:
        start = path.stat().st_size
    except OSError:
        start = 0
    try:
        with open(path, "a", encoding="utf-8") as handle:
            if torn:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                raise OSError(
                    errno.ENOSPC,
                    f"injected disk-full (chaos) appending {fault_key}")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        _truncate_to(path, start)
        raise


def _parse_lines(lines: List[str]) -> Tuple[List[Dict[str, Any]], int]:
    records: List[Dict[str, Any]] = []
    corrupt = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except ValueError:
            corrupt += 1
            continue
        if record.get("v", 0) > FLEET_WAL_VERSION:
            corrupt += 1
            continue
        records.append(record)
    return records, corrupt


def replay(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], int]:
    """Every parseable record in ``path``, plus the corrupt-line count.

    A missing file replays as empty — a fleet that has never enqueued
    anything has an empty queue, not an error.
    """
    try:
        text = Path(path).read_text("utf-8")
    except OSError:
        return [], 0
    return _parse_lines(text.splitlines())


def read_tail(
    path: Union[str, Path], offset: int
) -> Tuple[List[Dict[str, Any]], int]:
    """Records appended past byte ``offset``; returns the new offset.

    Only complete lines are consumed: a final line without its newline
    is a write still in flight, so the returned offset stops before it
    and the next call re-reads it whole.  A missing file reads as no
    progress (offset unchanged).
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return [], offset
    if not chunk:
        return [], offset
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    complete = chunk[: end + 1]
    records, _corrupt = _parse_lines(
        complete.decode("utf-8", errors="replace").splitlines()
    )
    return records, offset + len(complete)
