"""The composed-chaos soak: every serve fault at once, seed-pinned.

``python -m repro.serve soak`` is the service's end-to-end robustness
proof — the thing CI runs to show the hardening layers *compose*.  One
invocation drives four legs, all scratch-dir isolated and entirely
deterministic in ``--seed``:

1. **Serial baseline** — the exhibit runs locally, no service, no
   faults.  Its stdout is the byte-identity oracle for everything
   after, and its store hashes are where the poison spec is chosen
   (``sorted(hashes)[seed % len]`` — pure arithmetic, no RNG).
2. **Chaos, no poison** — server + respawning fleet under
   ``kill-worker`` + ``corrupt-store`` + ``disk-full`` +
   ``kill-midrun`` + ``corrupt-checkpoint`` chaos (the fleet runs with
   ``--checkpoint-every``, so workers die mid-simulation and reclaims
   resume from snapshots — some deliberately torn), clients under
   ``corrupt-journal`` (serve-mode clients journal nothing, which
   is the point: an armed fault with no surface must stay inert), all
   seeded.  Every client's stdout must be **byte-identical to the
   serial baseline** — torn writes, killed workers and full disks are
   re-run noise, never output.
3. **Chaos + poison** — the same plan plus ``poison:PREFIX``: every
   worker that leases the chosen spec dies, so the fleet must converge
   through the quarantine bound instead.  All clients must agree
   byte-for-byte with each other, render the poison hole as a DEGRADED
   annotation, and the fleet WAL must hold exactly the chosen spec in
   quarantine — with a bounded respawn count (a crash *loop* is exactly
   what quarantine forbids).
4. **Overload** — a 1-deep admission watermark against more clients
   than it can hold.  The server must shed with ``overloaded``, the
   clients must recover through seeded backoff, and every final stdout
   must again equal the serial baseline.

A final ``python -m repro.exec fsck`` over each chaos cache must exit
0: quarantine records cross-check against store holes, and no torn
entry or stale temp survives.  Any violated assertion prints a
``soak: FAIL`` line with the evidence and exits 1.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.store import ResultStore
from repro.serve.fleet import Fleet

#: Wall-clock ceiling for any single subprocess in the soak, seconds.
SUBPROCESS_TIMEOUT = 600.0

#: How long to wait for the server's socket to appear, seconds.
SOCKET_TIMEOUT = 30.0

#: Lease TTL for soak fleets: short, so killed workers' specs are
#: reclaimed quickly and the poison crash loop trips its bound in
#: seconds, yet still several multiples of the renew interval.
SOAK_TTL = 1.0

#: Fault rates for the composed plan.  High enough that every kind
#: demonstrably fires on a fig10-sized sweep, low enough that most
#: specs still take the clean path.  ``kill-midrun`` and
#: ``corrupt-checkpoint`` only have a surface because the soak fleets
#: run with ``--checkpoint-every``: workers die mid-simulation right
#: after a snapshot lands (and some snapshots are torn), and the
#: reclaimant must resume bit-identically anyway.
CHAOS_RATES = ("kill-worker:0.4,corrupt-store:0.4,disk-full:0.4,"
               "kill-midrun:0.4,corrupt-checkpoint:0.4")

#: Mid-run snapshot cadence for soak fleets, committed instructions.
#: Small enough that a default ``--n 2000`` run cuts several snapshots
#: (so kill-midrun has somewhere to fire and resume has something to
#: load), large enough to stay a sliver of each run's wall time.
SOAK_CHECKPOINT_EVERY = 500


class SoakError(AssertionError):
    """One soak assertion, with enough evidence to debug from CI logs."""


@dataclass
class LegResult:
    """Everything one service leg produced, for assertions."""

    #: Per client: (exit status, stdout, stderr).
    clients: List[Tuple[int, str, str]]
    server_stderr: str
    fleet_stderr: str

    @property
    def respawns(self) -> int:
        return self.fleet_stderr.count("respawning")


def _say(message: str) -> None:
    print(f"soak: {message}", flush=True)


def _base_env() -> Dict[str, str]:
    """The inherited environment, scrubbed of ambient chaos/ledger state."""
    env = dict(os.environ)
    for key in ("REPRO_FAULTS", "REPRO_LEDGER", "REPRO_CACHE_DIR"):
        env.pop(key, None)
    return env


def _exhibit_cmd(args: argparse.Namespace, cache: Path,
                 serve_sock: Optional[Path] = None) -> List[str]:
    cmd = [
        sys.executable, "-m", "repro", "fig10",
        "--n", str(args.n), "--benchmarks", args.benchmarks,
        "--cache-dir", str(cache),
    ]
    if serve_sock is None:
        cmd.extend(["--jobs", "1"])
    else:
        cmd.extend(["--serve", str(serve_sock)])
    return cmd


def _wait_for_socket(sock: Path, server: "subprocess.Popen[str]") -> None:
    deadline = time.monotonic() + SOCKET_TIMEOUT
    while time.monotonic() < deadline:
        if sock.exists():
            return
        if server.poll() is not None:
            _, err = server.communicate()
            raise SoakError(
                f"server exited {server.returncode} before listening:\n{err}"
            )
        time.sleep(0.05)
    raise SoakError(f"server socket {sock} never appeared")


def _stop(proc: "subprocess.Popen[str]", sig: int = signal.SIGINT,
          timeout: float = 10.0) -> Tuple[str, str]:
    """Signal ``proc`` and collect its (stdout, stderr)."""
    if proc.poll() is None:
        proc.send_signal(sig)
    try:
        return proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.communicate()


def _run_leg(
    args: argparse.Namespace,
    cache: Path,
    fleet_faults: Optional[str],
    client_faults: Optional[str],
    n_clients: int,
    max_queue: Optional[int] = None,
    retry_after: Optional[float] = None,
    checkpoint_every: int = 0,
) -> LegResult:
    """One service leg: server + drain fleet + concurrent clients."""
    cache.mkdir(parents=True, exist_ok=True)
    sock = cache / "serve" / "serve.sock"
    env = _base_env()

    server_cmd = [
        sys.executable, "-m", "repro.serve", "server",
        "--cache-dir", str(cache), "--socket", str(sock),
    ]
    if max_queue is not None:
        server_cmd.extend(["--max-queue", str(max_queue)])
    if retry_after is not None:
        server_cmd.extend(["--retry-after", str(retry_after)])
    fleet_cmd = [
        sys.executable, "-m", "repro.serve", "fleet",
        "--cache-dir", str(cache), "--workers", str(args.workers),
        "--ttl", str(SOAK_TTL), "--drain", "--idle-timeout", "30",
    ]
    if checkpoint_every:
        fleet_cmd.extend(["--checkpoint-every", str(checkpoint_every)])
    fleet_env = dict(env)
    if fleet_faults:
        fleet_env["REPRO_FAULTS"] = fleet_faults
    client_env = dict(env)
    if client_faults:
        client_env["REPRO_FAULTS"] = client_faults
        # An armed plan makes the CLI append a ledger record; point it
        # at scratch so the soak never grows a real ledger.
        client_env["REPRO_LEDGER"] = str(cache / "ledger.jsonl")

    server = subprocess.Popen(server_cmd, env=env, text=True,
                              stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    fleet: Optional["subprocess.Popen[str]"] = None
    clients: List["subprocess.Popen[str]"] = []
    try:
        _wait_for_socket(sock, server)
        fleet = subprocess.Popen(fleet_cmd, env=fleet_env, text=True,
                                 stdout=subprocess.PIPE,
                                 stderr=subprocess.PIPE)
        client_cmd = _exhibit_cmd(args, cache, serve_sock=sock)
        clients = [
            subprocess.Popen(client_cmd, env=client_env, text=True,
                             stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for _ in range(n_clients)
        ]
        outcomes = []
        for proc in clients:
            try:
                out, err = proc.communicate(timeout=SUBPROCESS_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, err = proc.communicate()
                raise SoakError(
                    f"client never converged (killed after "
                    f"{SUBPROCESS_TIMEOUT:.0f}s):\n{err}"
                )
            outcomes.append((proc.returncode, out, err))
        try:
            _fleet_out, fleet_err = fleet.communicate(timeout=60.0)
        except subprocess.TimeoutExpired:
            fleet.kill()
            _fleet_out, fleet_err = fleet.communicate()
            raise SoakError(f"fleet never drained:\n{fleet_err}")
        if fleet.returncode != 0:
            raise SoakError(f"fleet exited {fleet.returncode}:\n{fleet_err}")
        _server_out, server_err = _stop(server)
    finally:
        for proc in clients:
            if proc.poll() is None:
                proc.kill()
        if fleet is not None and fleet.poll() is None:
            fleet.kill()
        if server.poll() is None:
            server.kill()
    return LegResult(clients=outcomes, server_stderr=server_err,
                     fleet_stderr=fleet_err)


def _check_clients(
    leg: str,
    outcomes: Sequence[Tuple[int, str, str]],
    oracle: Optional[str],
) -> None:
    """Every client exited 0; stdouts agree with each other (and oracle)."""
    for i, (status, out, err) in enumerate(outcomes):
        if status != 0:
            raise SoakError(f"{leg}: client {i} exited {status}:\n{err}")
        if out != outcomes[0][1]:
            raise SoakError(
                f"{leg}: client {i} stdout diverged from client 0 — "
                "concurrent clients must agree byte-for-byte")
    if oracle is not None and outcomes[0][1] != oracle:
        raise SoakError(
            f"{leg}: client stdout diverged from the serial baseline — "
            "chaos must be invisible in output")


def _fsck(cache: Path) -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.exec", "fsck",
         "--cache-dir", str(cache)],
        env=_base_env(), text=True, capture_output=True,
        timeout=SUBPROCESS_TIMEOUT,
    )
    if proc.returncode != 0:
        raise SoakError(
            f"fsck over {cache} exited {proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}")


def _soak(args: argparse.Namespace, root: Path) -> None:
    """The four legs; raises :class:`SoakError` on the first violation."""
    seed = args.seed
    chaos = f"{CHAOS_RATES},seed={seed}"
    client_chaos = f"corrupt-journal:0.4,seed={seed}"

    # Leg 1: the serial oracle.
    _say(f"leg 1/4: serial baseline (seed={seed}, "
         f"benchmarks={args.benchmarks}, n={args.n})")
    serial_cache = root / "serial"
    serial = subprocess.run(
        _exhibit_cmd(args, serial_cache), env=_base_env(), text=True,
        capture_output=True, timeout=SUBPROCESS_TIMEOUT,
    )
    if serial.returncode != 0:
        raise SoakError(
            f"serial baseline exited {serial.returncode}:\n{serial.stderr}")
    oracle = serial.stdout
    hashes = sorted(p.stem for p in ResultStore(serial_cache).entry_paths())
    if not hashes:
        raise SoakError("serial baseline stored no results")
    poison_prefix = hashes[seed % len(hashes)][:8]

    # Leg 2: composed chaos, no poison — byte-identity must hold.
    _say(f"leg 2/4: composed chaos ({chaos}) — expecting byte-identity "
         "to the baseline")
    leg2 = _run_leg(args, root / "chaos", chaos, client_chaos, args.clients,
                    checkpoint_every=SOAK_CHECKPOINT_EVERY)
    _check_clients("leg 2", leg2.clients, oracle)
    _fsck(root / "chaos")

    # Leg 3: the same chaos plus a poison spec.
    _say(f"leg 3/4: chaos + poison:{poison_prefix} — expecting "
         "quarantine, agreement, bounded respawns")
    leg3 = _run_leg(args, root / "poison",
                    f"{chaos},poison:{poison_prefix}", client_chaos,
                    args.clients, checkpoint_every=SOAK_CHECKPOINT_EVERY)
    _check_clients("leg 3", leg3.clients, None)
    stdout = leg3.clients[0][1]
    if stdout == oracle:
        raise SoakError(
            "leg 3: poisoned run matched the clean baseline — the poison "
            "spec never resolved as a hole")
    if "DEGRADED" not in stdout:
        raise SoakError(
            "leg 3: client output carries no DEGRADED annotation for the "
            "quarantined spec")
    snap = Fleet(ResultStore(root / "poison").serve_dir).snapshot()
    if not snap.quarantined:
        raise SoakError("leg 3: no quarantine record in the fleet WAL")
    strays = [h for h in snap.quarantined if not h.startswith(poison_prefix)]
    if strays:
        raise SoakError(
            f"leg 3: non-poison spec(s) quarantined: {strays} — ordinary "
            "chaos must never trip the lease bound")
    for spec_hash in snap.quarantined:
        failure = snap.failures.get(spec_hash)
        if failure is None or failure.kind != "poison":
            raise SoakError(
                f"leg 3: quarantined {spec_hash[:12]}… did not resolve "
                "as kind='poison'")
    # Every spec can die at most once to the one-shot lease-1 chaos
    # (kill-worker at claim, or kill-midrun mid-simulation — one lease,
    # so at most one of the two), plus max_leases deaths per poison
    # spec; anything past that is a crash loop the quarantine bound
    # failed to stop.
    bound = len(hashes) + 2 * len(snap.quarantined) + 2
    if leg3.respawns > bound:
        raise SoakError(
            f"leg 3: {leg3.respawns} respawns exceeds the bound {bound} — "
            "quarantine failed to stop the crash loop")
    _fsck(root / "poison")

    # Leg 4: overload — a 1-deep watermark against clients + 1.
    _say("leg 4/4: overload (--max-queue 1, "
         f"{args.clients + 1} clients) — expecting sheds + recovery")
    leg4 = _run_leg(args, root / "overload", None, None,
                    args.clients + 1, max_queue=1, retry_after=0.02)
    _check_clients("leg 4", leg4.clients, oracle)
    if "serve: shed" not in leg4.server_stderr:
        raise SoakError(
            "leg 4: the 1-deep server never shed a submission — admission "
            "control did not engage")
    sheds = leg4.server_stderr.count("serve: shed")
    _fsck(root / "overload")

    _say(f"PASS seed={seed}: {len(hashes)} specs, quarantined "
         f"{len(snap.quarantined)} (poison {poison_prefix}), "
         f"{leg3.respawns} respawns, {sheds} sheds absorbed, fsck clean")


def run_soak(args: argparse.Namespace) -> int:
    """Drive the soak; 0 on a fully clean run, 1 with evidence on FAIL."""
    if args.cache_dir:
        root = Path(args.cache_dir)
        root.mkdir(parents=True, exist_ok=True)
        ephemeral = False
    else:
        root = Path(tempfile.mkdtemp(prefix="repro-soak-"))
        ephemeral = True
    status = 0
    try:
        _soak(args, root)
    except SoakError as exc:
        print(f"soak: FAIL: {exc}", file=sys.stderr)
        status = 1
    if ephemeral:
        if status == 0 and not args.keep:
            shutil.rmtree(root, ignore_errors=True)
        else:
            print(f"soak: scratch kept at {root}", file=sys.stderr)
    return status
