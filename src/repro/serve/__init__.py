"""repro.serve: the sharded sweep service.

The execution substrate grown over the last several PRs — content-
hashed :class:`~repro.exec.runspec.RunSpec` identity, the sharded
content-addressed :class:`~repro.exec.store.ResultStore`, write-ahead
journals, deterministic chaos — promoted into a distributed job
system:

* :mod:`repro.serve.server` — an asyncio front-end
  (``python -m repro.serve``) accepting sweep submissions over a unix
  socket (and optional TCP) and streaming per-spec results, derived
  metrics and progress back to every subscriber;
* :mod:`repro.serve.fleet` / :mod:`repro.serve.worker` — N independent
  worker processes (any hosts sharing the cache directory) leasing
  specs through flock-guarded WAL transactions, with expiry-based
  reclaim so ``kill-worker`` chaos provably converges;
* :mod:`repro.serve.client` — a blocking submitter and
  :class:`~repro.serve.client.ServeExecutor`, the drop-in executor
  behind ``python -m repro <exhibit> --serve SOCK``;
* :mod:`repro.serve.protocol` / :mod:`repro.serve.wal` — the JSON-line
  wire format (specs travel by hash-verified value) and the fsync'd,
  corruption-tolerant log primitives everything above sits on.

The headline is **multi-client in-flight dedupe**: overlapping sweeps
submitted by different clients share work *while it runs* — each spec
hash is simulated at most once fleet-wide and every subscriber receives
the result — not merely after it lands in the store.
"""

from __future__ import annotations

from repro.serve.client import (
    ServeExecutor,
    ServeUnavailable,
    SubmitOutcome,
    SweepClient,
)
from repro.serve.fleet import DEFAULT_LEASE_TTL, Claim, Fleet, FleetSnapshot
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    spec_from_payload,
    spec_payload,
)
from repro.serve.server import SweepServer
from repro.serve.worker import Worker

__all__ = [
    "Claim",
    "DEFAULT_LEASE_TTL",
    "Fleet",
    "FleetSnapshot",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeExecutor",
    "ServeUnavailable",
    "SubmitOutcome",
    "SweepClient",
    "SweepServer",
    "Worker",
    "spec_from_payload",
    "spec_payload",
]
