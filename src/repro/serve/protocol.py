"""Wire format of the sweep service: JSON lines, specs by value.

One message is one JSON object on one ``\\n``-terminated line — the
same framing as every WAL in the tree, chosen for the same reason: a
reader can always resynchronise on the next newline, and a torn line
corrupts exactly one message.  All messages carry a protocol version
(``v``); a server or client seeing a newer version than it speaks
rejects the message instead of mis-parsing it.

Specs travel **by value**: a submission carries each
:class:`~repro.exec.runspec.RunSpec`'s full :meth:`describe` payload —
the exact dict its content hash is computed over — so the server can
verify the hash it was quoted, re-materialise the spec for a worker on
any host, and never has to trust a client-chosen label.
:func:`spec_from_payload` is the inverse of :meth:`RunSpec.describe`
and is pinned by test to round-trip the content hash bit-for-bit; a
payload whose reconstruction hashes differently is rejected
(:class:`ProtocolError`) before it can poison the fleet queue.

Message kinds
-------------
Client to server::

    submit    {"specs": [<describe-dict>, ...], "client": "<name>",
               "deadline": <epoch-seconds, optional>,
               "retry_failed": <bool, optional>}

Server to client::

    accepted    {"n": N, "leased": L, "shared": S, "store": H}
    overloaded  {"retry_after": seconds, "message": "..."}
    result      {"spec": hash, "source": .., "seconds": .., "result":
                 <RunResult dict>, "metrics": <derived-rates dict>}
    failed      {"spec": hash, "failure": <FailedRun dict>}
    complete    {"leased": L, "shared": S, "store": H, "quarantined": Q,
                 "expired": E}
    error       {"message": "..."}

``result``/``failed`` stream as specs resolve, in resolution order (not
submission order — the client reorders by hash); ``complete`` is always
the final message of a successful submission.  ``overloaded`` is
admission control's whole vocabulary: the server's in-flight table is
at capacity (or this client has too much outstanding), nothing was
reserved, and the client should retry after the quoted deterministic
``retry_after`` — it closes the connection like ``error`` does, but it
is an invitation, not a verdict.  ``deadline`` is an absolute
wall-clock bound that travels with the work; specs the fleet cannot
*start* by then resolve as ``kind="timeout"`` holes.  ``retry_failed``
asks the server to re-open previously failed (including quarantined)
specs instead of replaying their recorded failures.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    SDRAMConfig,
)
from repro.exec.runspec import RunSpec

#: Bump on incompatible message-layout changes; both ends reject newer.
PROTOCOL_VERSION = 1

MSG_SUBMIT = "submit"
MSG_ACCEPTED = "accepted"
MSG_OVERLOADED = "overloaded"
MSG_RESULT = "result"
MSG_FAILED = "failed"
MSG_COMPLETE = "complete"
MSG_ERROR = "error"


class ProtocolError(ValueError):
    """A message that cannot be honoured: malformed, unknown, or lying
    about its content (a spec payload that hashes differently than the
    spec it claims to describe)."""


def encode_message(kind: str, **fields: Any) -> bytes:
    """One protocol message as its wire line (newline included)."""
    record: Dict[str, Any] = {"v": PROTOCOL_VERSION, "kind": kind}
    record.update(fields)
    line = json.dumps(record, sort_keys=True)
    assert "\n" not in line  # one message is always exactly one line
    return (line + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ProtocolError` when unusable."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparseable message: {exc}") from None
    if not isinstance(record, dict):
        raise ProtocolError("message is not a JSON object")
    if record.get("v", 0) > PROTOCOL_VERSION:
        raise ProtocolError(
            f"message speaks protocol v{record.get('v')}, "
            f"this end speaks v{PROTOCOL_VERSION}"
        )
    if not isinstance(record.get("kind"), str):
        raise ProtocolError("message has no kind")
    return record


# -- spec payloads -------------------------------------------------------------

def spec_payload(spec: RunSpec) -> Dict[str, Any]:
    """The JSON-ready identity payload a spec travels as."""
    return spec.describe()


def payload_hash(payload: Dict[str, Any]) -> str:
    """The content hash a describe-payload denotes.

    Same canonicalisation as :attr:`RunSpec.content_hash` — SHA-256
    over the sorted, separator-free JSON serialisation — so server and
    client agree on identity without re-materialising the spec.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _config_from_payload(payload: Dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its ``dataclasses.asdict``."""
    fields = dict(payload)
    nested = {
        "core": CoreConfig,
        "l1d": CacheConfig,
        "l1i": CacheConfig,
        "l2": CacheConfig,
        "l1_l2_bus": BusConfig,
        "memory_bus": BusConfig,
        "sdram": SDRAMConfig,
    }
    for name, cls in nested.items():
        if name in fields and isinstance(fields[name], dict):
            fields[name] = cls(**fields[name])
    return MachineConfig(**fields)


def spec_from_payload(payload: Dict[str, Any]) -> RunSpec:
    """The inverse of :meth:`RunSpec.describe`, hash-verified.

    Raises :class:`ProtocolError` when the payload is malformed or the
    reconstructed spec's content hash differs from the payload's — a
    client (or a corrupted queue record) must never be able to file
    work under a hash it does not actually describe.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("spec payload is not an object")
    expected = payload_hash(payload)
    try:
        kwargs: Tuple[Tuple[str, Any], ...] = tuple(
            (str(k), v) for k, v in payload.get("mechanism_kwargs") or ()
        )
        selection = payload.get("selection")
        spec = RunSpec(
            benchmark=payload["benchmark"],
            mechanism=payload["mechanism"],
            config=_config_from_payload(payload["config"]),
            n_instructions=payload["n_instructions"],
            mechanism_kwargs=kwargs,
            trace_length=payload.get("trace_length"),
            selection=tuple(selection) if selection else None,
            warmup_fraction=payload["warmup_fraction"],
            fast=payload["fast"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad spec payload: {exc!r}") from None
    if spec.content_hash != expected:
        raise ProtocolError(
            f"spec payload hashes to {expected[:12]}… but reconstructs "
            f"as {spec.content_hash[:12]}… (field drift between client "
            "and server?)"
        )
    return spec


def submit_message(specs: List[RunSpec], client: str,
                   deadline: Optional[float] = None,
                   retry_failed: bool = False) -> bytes:
    """The submission line for ``specs`` (order preserved, dupes kept).

    ``deadline`` is absolute epoch seconds; ``retry_failed`` asks the
    server to re-open recorded failures (quarantined specs included)
    instead of replaying them.  Both are omitted from the wire when at
    their defaults, so a plain submission is byte-identical to one from
    an older client.
    """
    fields: Dict[str, Any] = {
        "client": client,
        "specs": [spec_payload(spec) for spec in specs],
    }
    if deadline is not None:
        fields["deadline"] = deadline
    if retry_failed:
        fields["retry_failed"] = True
    return encode_message(MSG_SUBMIT, **fields)


def batch_hashes(record: Dict[str, Any]) -> Optional[List[str]]:
    """The content hashes a decoded ``submit`` record quotes, in order.

    None when the record is not a well-formed submission (the server
    answers ``error`` rather than raising at the caller).
    """
    specs = record.get("specs")
    if not isinstance(specs, list) or not specs:
        return None
    hashes = []
    for payload in specs:
        if not isinstance(payload, dict):
            return None
        hashes.append(payload_hash(payload))
    return hashes
