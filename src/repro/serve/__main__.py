"""Sweep-service front end: server, worker, and fleet launcher.

Examples::

    python -m repro.serve                     # server on <cache>/serve/serve.sock
    python -m repro.serve server --host 127.0.0.1 --port 7841   # + TCP
    python -m repro.serve worker --drain      # one worker, exit when drained
    python -m repro.serve fleet --workers 4   # four workers, respawn chaos kills

All roles share state only through the cache directory (``--cache-dir``
or ``$REPRO_CACHE_DIR``): the sharded result store, and the fleet's
queue/lease WALs under ``<cache>/serve/``.  Workers can therefore run
on different hosts than the server, as long as the directory is shared.

The ``fleet`` subcommand is a local convenience launcher: it spawns N
``worker`` subprocesses and supervises them — a worker dying with the
injected-kill status (``kill-worker`` chaos, exit 76) is respawned so
chaos runs converge, any other nonzero exit is propagated.  With
``--drain`` the fleet exits 0 once its workers report the queue fully
resolved.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import time
from typing import List, Optional

from repro.exec.faults import KILL_WORKER_EXIT
from repro.exec.store import ResultStore
from repro.serve.fleet import DEFAULT_LEASE_TTL, Fleet
from repro.serve.server import SweepServer
from repro.serve.worker import Worker


def _store_and_fleet(args: argparse.Namespace) -> "tuple[ResultStore, Fleet]":
    store = ResultStore(args.cache_dir)  # None -> default cache dir
    return store, Fleet(store.serve_dir, ttl=args.ttl)


def _cmd_server(args: argparse.Namespace) -> int:
    store, fleet = _store_and_fleet(args)
    server = SweepServer(
        store, fleet,
        socket_path=args.socket, host=args.host, port=args.port,
    )
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        print(
            f"serve: shutting down ({server.leased_total} leased, "
            f"{server.shared_total} shared, {server.store_total} store "
            "over this lifetime)",
            file=sys.stderr,
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    store, fleet = _store_and_fleet(args)
    worker_id = args.worker_id or f"worker-{os.getpid()}"
    worker = Worker(fleet, store, worker_id)
    try:
        status = worker.run(drain=args.drain, idle_timeout=args.idle_timeout)
    except KeyboardInterrupt:
        status = 130
    print(
        f"worker {worker_id}: {worker.completed} completed, "
        f"{worker.failed} failed",
        file=sys.stderr,
    )
    return status


def _spawn_worker(args: argparse.Namespace, index: int,
                  generation: int) -> "subprocess.Popen[bytes]":
    cmd = [
        sys.executable, "-m", "repro.serve", "worker",
        "--worker-id", f"w{index}-g{generation}",
        "--ttl", str(args.ttl),
    ]
    if args.cache_dir:
        cmd.extend(["--cache-dir", args.cache_dir])
    if args.drain:
        cmd.append("--drain")
    if args.idle_timeout is not None:
        cmd.extend(["--idle-timeout", str(args.idle_timeout)])
    return subprocess.Popen(cmd)


def _cmd_fleet(args: argparse.Namespace) -> int:
    generations = [1] * args.workers
    procs: List[Optional["subprocess.Popen[bytes]"]] = [
        _spawn_worker(args, i, 1) for i in range(args.workers)
    ]
    failures = 0
    try:
        while any(proc is not None for proc in procs):
            for i, proc in enumerate(procs):
                if proc is None:
                    continue
                status = proc.poll()
                if status is None:
                    continue
                if status == KILL_WORKER_EXIT:
                    # Injected chaos kill: the lease it held will
                    # expire; a fresh worker picks up the reclaim.
                    generations[i] += 1
                    print(
                        f"fleet: worker {i} died from injected chaos; "
                        f"respawning (generation {generations[i]})",
                        file=sys.stderr,
                    )
                    procs[i] = _spawn_worker(args, i, generations[i])
                    continue
                if status != 0:
                    failures += 1
                    print(f"fleet: worker {i} exited {status}",
                          file=sys.stderr)
                procs[i] = None
            time.sleep(0.05)
    except KeyboardInterrupt:
        for proc in procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        return 130
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="sharded sweep service: server, workers, fleets",
    )
    parser.add_argument(
        "subcommand", nargs="?", default="server",
        choices=("server", "worker", "fleet"),
        help="server (default): accept submissions; worker: one fleet "
             "member; fleet: spawn and supervise N local workers",
    )
    parser.add_argument("--cache-dir", default=None,
                        help="shared cache directory (default ~/.cache/repro "
                             "or $REPRO_CACHE_DIR); the store and the fleet "
                             "WALs live here")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket to listen on (server; default "
                             "<cache>/serve/serve.sock)")
    parser.add_argument("--host", default=None,
                        help="also listen on TCP host (server; needs --port)")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port for --host (server)")
    parser.add_argument("--ttl", type=float, default=DEFAULT_LEASE_TTL,
                        help="lease TTL in seconds (worker/fleet; must "
                             f"exceed one simulation's wall time; default "
                             f"{DEFAULT_LEASE_TTL:g})")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity (worker; default "
                             "worker-<pid>)")
    parser.add_argument("--workers", type=int, default=2,
                        help="fleet size (fleet; default 2)")
    parser.add_argument("--drain", action="store_true",
                        help="exit 0 once the queue is fully resolved "
                             "(worker/fleet; default: serve forever)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SEC",
                        help="with --drain, exit 0 after SEC idle seconds "
                             "even if no work ever arrived")
    args = parser.parse_args(argv)
    if (args.host is None) != (args.port is None):
        parser.error("--host and --port go together")
    if args.subcommand == "worker":
        return _cmd_worker(args)
    if args.subcommand == "fleet":
        return _cmd_fleet(args)
    return _cmd_server(args)


if __name__ == "__main__":
    sys.exit(main())
