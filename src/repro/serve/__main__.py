"""Sweep-service front end: server, worker, fleet, client, soak.

Examples::

    python -m repro.serve                     # server on <cache>/serve/serve.sock
    python -m repro.serve server --host 127.0.0.1 --port 7841   # + TCP
    python -m repro.serve server --max-queue 64 --max-client-inflight 32
    python -m repro.serve worker --drain      # one worker, exit when drained
    python -m repro.serve fleet --workers 4   # four workers, respawn chaos kills
    python -m repro.serve client --benchmark swim --mechanism TP --n 2000
    python -m repro.serve quarantine          # list quarantined specs
    python -m repro.serve quarantine clear    # re-open them, fresh lease budget
    python -m repro.serve soak --seed 7       # composed-chaos soak harness

All roles share state only through the cache directory (``--cache-dir``
or ``$REPRO_CACHE_DIR``): the sharded result store, and the fleet's
queue/lease WALs under ``<cache>/serve/``.  Workers can therefore run
on different hosts than the server, as long as the directory is shared.

The ``fleet`` subcommand is a local convenience launcher: it spawns N
``worker`` subprocesses and supervises them — a worker dying with the
injected-kill status (``kill-worker`` and ``poison`` chaos, exit 76) is
respawned so chaos runs converge, any other nonzero exit is propagated.
With ``--drain`` the fleet exits 0 once its workers report the queue
fully resolved.

``soak`` (see :mod:`repro.serve.soak`) is the composed-chaos proof CI
runs: server + fleet + concurrent clients under every serve-relevant
fault kind at once, seed-pinned, asserting convergence, byte-identity
to a serial run, quarantine correctness and a clean fsck.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import time
from typing import List, Optional

from repro.exec.faults import KILL_WORKER_EXIT
from repro.exec.store import ResultStore
from repro.serve.fleet import DEFAULT_LEASE_TTL, Fleet
from repro.serve.server import SweepServer
from repro.serve.worker import Worker


def _store_and_fleet(args: argparse.Namespace) -> "tuple[ResultStore, Fleet]":
    store = ResultStore(args.cache_dir)  # None -> default cache dir
    return store, Fleet(store.serve_dir, ttl=args.ttl,
                        max_leases=args.max_leases)


def _cmd_server(args: argparse.Namespace) -> int:
    store, fleet = _store_and_fleet(args)
    server = SweepServer(
        store, fleet,
        socket_path=args.socket, host=args.host, port=args.port,
        max_queue=args.max_queue,
        max_client_inflight=args.max_client_inflight,
        retry_after=args.retry_after,
    )
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        print(
            f"serve: shutting down ({server.leased_total} leased, "
            f"{server.shared_total} shared, {server.store_total} store, "
            f"{server.shed_total} shed, "
            f"{server.quarantined_total} quarantined, "
            f"{server.expired_total} expired over this lifetime)",
            file=sys.stderr,
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    store, fleet = _store_and_fleet(args)
    worker_id = args.worker_id or f"worker-{os.getpid()}"
    worker = Worker(fleet, store, worker_id,
                    checkpoint_every=args.checkpoint_every)
    try:
        status = worker.run(drain=args.drain, idle_timeout=args.idle_timeout)
    except KeyboardInterrupt:
        status = 130
    print(
        f"worker {worker_id}: {worker.completed} completed, "
        f"{worker.failed} failed",
        file=sys.stderr,
    )
    return status


def _spawn_worker(args: argparse.Namespace, index: int,
                  generation: int) -> "subprocess.Popen[bytes]":
    cmd = [
        sys.executable, "-m", "repro.serve", "worker",
        "--worker-id", f"w{index}-g{generation}",
        "--ttl", str(args.ttl),
    ]
    if args.max_leases is not None:
        cmd.extend(["--max-leases", str(args.max_leases)])
    if args.cache_dir:
        cmd.extend(["--cache-dir", args.cache_dir])
    if args.drain:
        cmd.append("--drain")
    if args.idle_timeout is not None:
        cmd.extend(["--idle-timeout", str(args.idle_timeout)])
    if args.checkpoint_every:
        cmd.extend(["--checkpoint-every", str(args.checkpoint_every)])
    return subprocess.Popen(cmd)


def _cmd_fleet(args: argparse.Namespace) -> int:
    generations = [1] * args.workers
    procs: List[Optional["subprocess.Popen[bytes]"]] = [
        _spawn_worker(args, i, 1) for i in range(args.workers)
    ]
    failures = 0
    try:
        while any(proc is not None for proc in procs):
            for i, proc in enumerate(procs):
                if proc is None:
                    continue
                status = proc.poll()
                if status is None:
                    continue
                if status == KILL_WORKER_EXIT:
                    # Injected chaos kill: the lease it held will
                    # expire; a fresh worker picks up the reclaim.
                    generations[i] += 1
                    print(
                        f"fleet: worker {i} died from injected chaos; "
                        f"respawning (generation {generations[i]})",
                        file=sys.stderr,
                    )
                    procs[i] = _spawn_worker(args, i, generations[i])
                    continue
                if status != 0:
                    failures += 1
                    print(f"fleet: worker {i} exited {status}",
                          file=sys.stderr)
                procs[i] = None
            time.sleep(0.05)
    except KeyboardInterrupt:
        for proc in procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        return 130
    return 1 if failures else 0


def _cmd_client(args: argparse.Namespace) -> int:
    """One spec, one submission — the smallest possible fleet client."""
    from repro.exec.runspec import RunSpec
    from repro.serve.client import ServeUnavailable, SweepClient

    store = ResultStore(args.cache_dir)
    sock = args.socket or str(store.serve_dir / "serve.sock")
    spec = RunSpec(benchmark=args.benchmark, mechanism=args.mechanism,
                   n_instructions=args.n)
    client = SweepClient(socket_path=sock, client_id=f"cli-{os.getpid()}")
    deadline = (time.time() + args.deadline
                if args.deadline is not None else None)
    try:
        outcome = client.submit([spec], deadline=deadline,
                                retry_failed=args.retry_failed)
    except ServeUnavailable as exc:
        if "cannot reach" in str(exc):
            print(f"cannot connect to {sock} (is the server running?)",
                  file=sys.stderr)
            return 2
        print(f"repro.serve client: {exc}", file=sys.stderr)
        return 1
    key = spec.content_hash
    failure = outcome.failures.get(key)
    if failure is not None:
        print(f"FAILED {key[:12]}… {failure.summary()}")
        return 1
    result = outcome.results.get(key)
    source = outcome.sources.get(key, "?")
    seconds = outcome.seconds.get(key, 0.0)
    ipc = getattr(result, "ipc", None)
    print(f"ok {key[:12]}… {args.benchmark}/{args.mechanism} "
          f"({source}, {seconds:.3f}s"
          + (f", ipc {ipc:.4f}" if isinstance(ipc, float) else "") + ")")
    return 0


def _cmd_quarantine(args: argparse.Namespace) -> int:
    """Inspect or clear the fleet's poison quarantine."""
    _store, fleet = _store_and_fleet(args)
    snap = fleet.snapshot()
    if args.action == "clear":
        targets = None
        if args.hash:
            targets = [h for h in snap.quarantined
                       if h.startswith(args.hash)]
        cleared = fleet.clear_quarantine(targets)
        for spec_hash in cleared:
            print(f"  reopened {spec_hash}")
        print(f"quarantine: cleared {len(cleared)} spec"
              f"{'' if len(cleared) == 1 else 's'}")
        return 0
    if args.action is not None:
        print(f"quarantine: unknown action {args.action!r} "
              "(expected: clear)", file=sys.stderr)
        return 1
    for spec_hash in sorted(snap.quarantined):
        failure = snap.failures.get(spec_hash)
        detail = f"  {failure.summary()}" if failure is not None else ""
        print(f"  {spec_hash}{detail}")
    print(f"quarantine: {len(snap.quarantined)} spec"
          f"{'' if len(snap.quarantined) == 1 else 's'}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="sharded sweep service: server, workers, fleets, "
                    "clients, chaos soaks",
    )
    parser.add_argument(
        "subcommand", nargs="?", default="server",
        choices=("server", "worker", "fleet", "client", "quarantine",
                 "soak"),
        help="server (default): accept submissions; worker: one fleet "
             "member; fleet: spawn and supervise N local workers; "
             "client: submit one spec; quarantine: list/clear poison "
             "specs; soak: seed-pinned composed-chaos harness",
    )
    parser.add_argument(
        "action", nargs="?", default=None,
        help="subcommand action (quarantine: 'clear')",
    )
    parser.add_argument("--cache-dir", default=None,
                        help="shared cache directory (default ~/.cache/repro "
                             "or $REPRO_CACHE_DIR); the store and the fleet "
                             "WALs live here")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket to listen on (server; default "
                             "<cache>/serve/serve.sock)")
    parser.add_argument("--host", default=None,
                        help="also listen on TCP host (server; needs --port)")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port for --host (server)")
    parser.add_argument("--ttl", type=float, default=DEFAULT_LEASE_TTL,
                        help="lease TTL in seconds (worker/fleet; must "
                             f"exceed one simulation's wall time; default "
                             f"{DEFAULT_LEASE_TTL:g})")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity (worker; default "
                             "worker-<pid>)")
    parser.add_argument("--workers", type=int, default=2,
                        help="fleet size (fleet; default 2)")
    parser.add_argument("--drain", action="store_true",
                        help="exit 0 once the queue is fully resolved "
                             "(worker/fleet; default: serve forever)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SEC",
                        help="with --drain, exit 0 after SEC idle seconds "
                             "even if no work ever arrived")
    parser.add_argument("--max-queue", type=int, default=None, metavar="N",
                        help="admission watermark: shed submissions while "
                             "N or more hashes are in flight (server; "
                             "default unbounded)")
    parser.add_argument("--max-client-inflight", type=int, default=None,
                        metavar="N",
                        help="per-client cap on outstanding hashes "
                             "(server; default unbounded)")
    parser.add_argument("--retry-after", type=float, default=0.05,
                        metavar="SEC",
                        help="deterministic base retry hint quoted in "
                             "overloaded answers (server; default 0.05)")
    parser.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                        help="cut a crash-safe mid-run snapshot every N "
                             "committed instructions (worker/fleet; default "
                             "0 = off); a reclaimed lease resumes from the "
                             "newest snapshot instead of instruction zero, "
                             "bit-identical either way")
    parser.add_argument("--max-leases", type=int, default=None, metavar="N",
                        help="leases a spec may burn before quarantine "
                             "(worker/fleet; default: RetryPolicy-derived)")
    parser.add_argument("--benchmark", default="swim",
                        help="benchmark to submit (client; default swim)")
    parser.add_argument("--mechanism", default="TP",
                        help="mechanism to submit (client; default TP)")
    parser.add_argument("--n", type=int, default=2000,
                        help="instructions to simulate (client/soak; "
                             "default 2000)")
    parser.add_argument("--deadline", type=float, default=None, metavar="SEC",
                        help="relative submission deadline in seconds "
                             "(client); undispatched work past it becomes "
                             "timeout holes")
    parser.add_argument("--retry-failed", action="store_true",
                        help="re-open recorded failures, quarantined specs "
                             "included (client)")
    parser.add_argument("--hash", default=None, metavar="PREFIX",
                        help="limit `quarantine clear` to hashes with this "
                             "prefix")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos seed for soak (default 7)")
    parser.add_argument("--clients", type=int, default=2,
                        help="concurrent soak clients (default 2)")
    parser.add_argument("--benchmarks", default="swim,art",
                        help="comma-separated soak benchmarks "
                             "(default swim,art)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the soak scratch directory for "
                             "post-mortems")
    args = parser.parse_args(argv)
    if (args.host is None) != (args.port is None):
        parser.error("--host and --port go together")
    if args.subcommand == "worker":
        return _cmd_worker(args)
    if args.subcommand == "fleet":
        return _cmd_fleet(args)
    if args.subcommand == "client":
        return _cmd_client(args)
    if args.subcommand == "quarantine":
        return _cmd_quarantine(args)
    if args.subcommand == "soak":
        from repro.serve.soak import run_soak
        return run_soak(args)
    return _cmd_server(args)


if __name__ == "__main__":
    sys.exit(main())
