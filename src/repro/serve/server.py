"""The asyncio front-end: submissions in, deduped fleet work out.

One server process owns the **in-flight table**: a map from spec
content hash to the list of live subscriptions wanting its result.
That table is what turns overlapping submissions into shared work —
the headline of the service.  When a submission arrives, each of its
hashes is resolved in this order, and the reservation step happens
*synchronously inside the event loop* (no ``await`` between check and
insert), so two clients racing the same hash can never both enqueue it:

1. **in-flight** — some earlier submission already owns the hash: this
   one subscribes and will receive the same result (``shared``);
2. **store** — the shared content-addressed store already has it
   (``store`` hits, checked off the event loop);
3. **fleet** — the hash is enqueued exactly once to the fleet queue
   (``leased``); whichever worker claims it resolves every subscriber.

Results come back through the queue WAL, not a side channel: a watcher
task tails ``queue.jsonl`` by byte offset (complete lines only) and, on
every ``done``/``failed`` record, reads the result from the store,
harvests it into the metrics registry (:mod:`repro.obs.metrics`), and
streams one ``result``/``failed`` message — payload, wall seconds,
derived rates, per-submission progress — to every subscriber.  A
submission whose last hash resolves gets a final ``complete`` message
carrying its dedupe accounting.

Every blocking operation — store reads, WAL tails, flock-guarded
enqueues — is offloaded with ``asyncio.to_thread``; nothing on the
event loop touches a file.  simlint's SIM604 rule holds this module to
that (see :mod:`repro.analysis.asyncrules`).

Production hardening (see docs/service.md, "Overload, poison specs &
deadlines"): admission control sheds submissions with a deterministic
``overloaded`` retry hint when the in-flight table is at its watermark
(``--max-queue``) or a client exceeds its in-flight cap
(``--max-client-inflight``); the watcher doubles as the deadline
sweeper, expiring undispatched work whose submission deadline passed;
and ``quarantine``/``expired`` queue records stream to subscribers as
annotated ``FailedRun`` holes exactly like worker failures do.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.core.simulation import RunResult
from repro.exec.store import ResultStore
from repro.obs.metrics import derive_metrics, harvest_result
from repro.serve import wal
from repro.serve.fleet import (
    KIND_DONE,
    KIND_EXPIRED,
    KIND_FAILED,
    KIND_QUARANTINE,
    Fleet,
)
from repro.serve.protocol import (
    MSG_ACCEPTED,
    MSG_COMPLETE,
    MSG_ERROR,
    MSG_FAILED,
    MSG_OVERLOADED,
    MSG_RESULT,
    ProtocolError,
    batch_hashes,
    decode_message,
    encode_message,
)

#: How often the watcher polls the queue WAL for resolutions, seconds.
WATCH_SECONDS = 0.05

#: Longest accepted request line: a submission of a few thousand specs
#: is legitimate; an unbounded line is a memory hostage.  Passed to the
#: asyncio streams as their buffer ``limit`` — without it the reader's
#: 64 KiB default would make ``readline`` blow up on any batch past a
#: few dozen specs.
MAX_LINE_BYTES = 64 << 20


@dataclass
class _Subscription:
    """One submission's outstanding interest in a set of hashes."""

    client: str
    outbox: "asyncio.Queue[Optional[bytes]]"
    pending: Set[str] = field(default_factory=set)
    total: int = 0
    leased: int = 0
    shared: int = 0
    store_hits: int = 0
    quarantined: int = 0
    expired: int = 0
    finished: bool = False

    def progress(self) -> List[int]:
        return [self.total - len(self.pending), self.total]

    def complete_message(self) -> bytes:
        return encode_message(
            MSG_COMPLETE, leased=self.leased, shared=self.shared,
            store=self.store_hits, quarantined=self.quarantined,
            expired=self.expired,
        )


class SweepServer:
    """Accept sweep submissions; dedupe them against the fleet."""

    def __init__(
        self,
        store: ResultStore,
        fleet: Fleet,
        socket_path: Optional[Path] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        watch_seconds: float = WATCH_SECONDS,
        max_line: int = MAX_LINE_BYTES,
        max_queue: Optional[int] = None,
        max_client_inflight: Optional[int] = None,
        retry_after: float = 0.05,
    ) -> None:
        self.store = store
        self.fleet = fleet
        self.socket_path = (Path(socket_path) if socket_path is not None
                            else store.serve_dir / "serve.sock")
        self.host = host
        self.port = port
        self.watch_seconds = watch_seconds
        self.max_line = int(max_line)
        #: Admission watermark: a submission is admitted only while the
        #: in-flight table holds fewer than this many hashes (then its
        #: whole batch is reserved — a watermark, not a hard size cap,
        #: because a cap smaller than one batch could never admit it).
        #: None = unbounded, the pre-hardening behaviour.
        self.max_queue = max_queue
        #: Per-client ceiling on outstanding (unresolved) hashes.
        self.max_client_inflight = max_client_inflight
        #: Deterministic base retry hint quoted in ``overloaded``
        #: messages; clients jitter and exponentiate from it.
        self.retry_after = float(retry_after)
        #: hash -> subscriptions awaiting it.  Only ever touched from
        #: the event loop, and reservation happens without awaiting.
        self._inflight: Dict[str, List[_Subscription]] = {}
        #: Live subscriptions, for per-client in-flight accounting.
        self._subs: List[_Subscription] = []
        #: hash -> absolute deadline, for hashes this server enqueued
        #: with one; tells the watcher when a sweep is worth running.
        self._deadlines: Dict[str, float] = {}
        self._queue_offset = 0
        # Lifetime accounting (logged on shutdown, asserted by tests).
        self.leased_total = 0
        self.shared_total = 0
        self.store_total = 0
        self.shed_total = 0
        self.quarantined_total = 0
        self.expired_total = 0

    # -- lifecycle ------------------------------------------------------------

    async def serve(self) -> None:
        """Listen until cancelled; unix socket always, TCP when asked."""
        await asyncio.to_thread(self._prepare_socket_dir)
        servers = [await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=self.max_line
        )]
        endpoints = [f"unix:{self.socket_path}"]
        if self.host is not None and self.port is not None:
            servers.append(await asyncio.start_server(
                self._handle, host=self.host, port=self.port,
                limit=self.max_line,
            ))
            endpoints.append(f"tcp:{self.host}:{self.port}")
        watcher = asyncio.ensure_future(self._watch())
        print(f"serve: listening on {', '.join(endpoints)}", file=sys.stderr)
        sys.stderr.flush()
        try:
            await asyncio.gather(*[s.serve_forever() for s in servers])
        finally:
            watcher.cancel()
            for server in servers:
                server.close()
            await asyncio.to_thread(self._remove_socket)

    def _prepare_socket_dir(self) -> None:
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        # A stale socket from a killed server would make bind() fail.
        self.socket_path.unlink(missing_ok=True)

    def _remove_socket(self) -> None:
        self.socket_path.unlink(missing_ok=True)

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        """One connection, one submission, streamed until complete."""
        # simlint: allow[SIM605] bounded by the submission's spec count, which admission control caps before anything is queued
        outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        sender = asyncio.ensure_future(self._send_loop(writer, outbox))
        try:
            try:
                line = await reader.readline()
            except ValueError:
                # The reader refuses to buffer a line past its limit
                # (it raises rather than returning a truncated line) —
                # answer with a protocol error instead of dying and
                # leaving the client a bare closed stream.
                outbox.put_nowait(encode_message(
                    MSG_ERROR,
                    message=(f"submission line exceeds the server's "
                             f"{self.max_line}-byte limit"),
                ))
                return
            if not line:
                return
            try:
                record = decode_message(line)
            except ProtocolError as exc:
                outbox.put_nowait(encode_message(MSG_ERROR, message=str(exc)))
                return
            if record.get("kind") != "submit":
                outbox.put_nowait(encode_message(
                    MSG_ERROR,
                    message=f"unexpected message kind {record.get('kind')!r}",
                ))
                return
            await self._submit(record, outbox)
            # The watcher resolves the subscription; sending the final
            # None (below, in _resolve) ends the sender loop.
            await sender
            sender = None  # type: ignore[assignment]
        finally:
            if sender is not None:
                await outbox.put(None)
                await sender

    async def _send_loop(
        self,
        writer: "asyncio.StreamWriter",
        outbox: "asyncio.Queue[Optional[bytes]]",
    ) -> None:
        """Drain one connection's outbox; None ends the stream."""
        try:
            while True:
                message = await outbox.get()
                if message is None:
                    break
                writer.write(message)
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # subscriber went away; nothing to stream to
        finally:
            try:
                writer.close()
            except OSError:
                pass

    # -- submission ------------------------------------------------------------

    async def _submit(
        self,
        record: Dict[str, Any],
        outbox: "asyncio.Queue[Optional[bytes]]",
    ) -> None:
        hashes = batch_hashes(record)
        if hashes is None:
            outbox.put_nowait(encode_message(
                MSG_ERROR, message="submission carries no spec payloads"))
            outbox.put_nowait(None)
            return
        payloads = record["specs"]
        client = str(record.get("client", "?"))
        deadline = record.get("deadline")
        deadline = float(deadline) if isinstance(deadline, (int, float)) \
            else None
        retry_failed = bool(record.get("retry_failed"))
        unique = len(set(hashes))

        if (self.max_client_inflight is not None
                and unique > self.max_client_inflight):
            # Bigger than the client's whole budget: retrying can never
            # help, so this is an error, not an overload.
            outbox.put_nowait(encode_message(
                MSG_ERROR,
                message=(f"submission of {unique} specs exceeds the "
                         f"per-client in-flight cap of "
                         f"{self.max_client_inflight}"),
            ))
            outbox.put_nowait(None)
            return
        # Admission control, checked synchronously before anything is
        # reserved (so a shed submission leaves no trace to unwind).
        shed_why = self._admission_refusal(client, unique)
        if shed_why is not None:
            self.shed_total += 1
            outbox.put_nowait(encode_message(
                MSG_OVERLOADED, retry_after=self.retry_after,
                message=shed_why,
            ))
            outbox.put_nowait(None)
            print(f"serve: shed {client}: {shed_why}", file=sys.stderr)
            sys.stderr.flush()
            return
        sub = _Subscription(client=client, outbox=outbox)
        self._subs.append(sub)

        # Reservation is synchronous: between here and the end of the
        # loop there is no await, so a concurrent submission of the
        # same hash sees this one's reservation or none — never a torn
        # half-reserved state that double-enqueues.
        owned: Dict[str, Dict[str, Any]] = {}
        for spec_hash, payload in zip(hashes, payloads):
            if spec_hash in sub.pending:
                continue  # in-batch duplicate
            sub.pending.add(spec_hash)
            waiting = self._inflight.get(spec_hash)
            if waiting is not None:
                waiting.append(sub)
                sub.shared += 1
            else:
                self._inflight[spec_hash] = [sub]
                owned[spec_hash] = payload
        sub.total = len(sub.pending)

        # Owned hashes: the store may already have them (a finished
        # sweep from any client, any time); the rest go to the fleet.
        to_enqueue: Dict[str, Dict[str, Any]] = {}
        for spec_hash, payload in owned.items():
            entry = await asyncio.to_thread(self._load_entry, spec_hash)
            if entry is not None:
                sub.store_hits += 1
                self._resolve_done(spec_hash, entry, source="store",
                                   seconds=0.0)
            else:
                to_enqueue[spec_hash] = payload
        if to_enqueue:
            appended = set(await asyncio.to_thread(
                self.fleet.enqueue, to_enqueue, deadline))
            sub.leased += len(appended)
            if deadline is not None:
                for spec_hash in appended:
                    self._deadlines[spec_hash] = deadline
            skipped = {spec_hash: payload
                       for spec_hash, payload in to_enqueue.items()
                       if spec_hash not in appended}
            if skipped:
                await self._adopt_skipped(skipped, sub, retry_failed)

        self.leased_total += sub.leased
        self.shared_total += sub.shared
        self.store_total += sub.store_hits
        outbox.put_nowait(encode_message(
            MSG_ACCEPTED, n=sub.total, leased=sub.leased,
            shared=sub.shared, store=sub.store_hits,
        ))
        print(
            f"serve: {client}: {sub.total} specs "
            f"({sub.leased} leased, {sub.shared} shared, "
            f"{sub.store_hits} store)",
            file=sys.stderr,
        )
        sys.stderr.flush()
        self._finish_if_complete(sub)

    def _admission_refusal(self, client: str, unique: int) -> Optional[str]:
        """Why this submission must be shed right now, or None to admit.

        Runs synchronously on the event loop against the same state the
        reservation loop uses, so admission and reservation cannot
        disagree.
        """
        if (self.max_queue is not None
                and len(self._inflight) >= self.max_queue):
            return (f"server at capacity ({len(self._inflight)} hashes "
                    f"in flight, watermark {self.max_queue})")
        if self.max_client_inflight is not None:
            outstanding = sum(
                len(s.pending) for s in self._subs
                if s.client == client and not s.finished
            )
            if outstanding + unique > self.max_client_inflight:
                return (f"client {client} has {outstanding} specs in "
                        f"flight; {unique} more would exceed its cap of "
                        f"{self.max_client_inflight}")
        return None

    async def _adopt_skipped(
        self,
        skipped: Dict[str, Dict[str, Any]],
        sub: _Subscription,
        retry_failed: bool = False,
    ) -> None:
        """Hashes the fleet already owns: resolve or re-open them.

        ``enqueue`` skips a hash that is already in the queue WAL.  A
        skipped hash that is still *pending* is genuinely shared work —
        a worker will resolve it and the watcher will stream it.  But a
        skipped hash that is already *resolved* would hang its
        subscribers forever: no worker touches it again and its
        ``done``/``failed`` record may sit before the watcher's offset.
        So the resolution is replayed from a fleet snapshot here: a
        ``done`` whose store entry still reads resolves immediately; a
        ``failed`` streams its recorded failure; a ``done`` whose store
        entry has been pruned is a broken promise — the spec is
        requeued so the fleet simulates it afresh.

        ``retry_failed`` (an explicit client request) re-opens recorded
        failures instead of replaying them: quarantined hashes are
        cleared (requeue + lease reset — without the reset the next
        claim would instantly re-trip the quarantine bound), plain
        failures are requeued.
        """
        snap = await asyncio.to_thread(self.fleet.snapshot)
        to_requeue: Dict[str, Dict[str, Any]] = {}
        to_clear: List[str] = []
        for spec_hash, payload in skipped.items():
            if spec_hash in snap.done:
                entry = await asyncio.to_thread(self._load_entry, spec_hash)
                if entry is not None:
                    sub.store_hits += 1
                    self._resolve_done(spec_hash, entry, source="store",
                                       seconds=0.0)
                else:
                    to_requeue[spec_hash] = payload
            elif spec_hash in snap.failures:
                if retry_failed:
                    if spec_hash in snap.quarantined:
                        to_clear.append(spec_hash)
                        sub.leased += 1
                    else:
                        to_requeue[spec_hash] = payload
                else:
                    sub.shared += 1
                    self._resolve_failed(
                        spec_hash, snap.failures[spec_hash].describe(),
                        quarantined=spec_hash in snap.quarantined,
                        expired=spec_hash in snap.expired,
                    )
            else:
                sub.shared += 1  # pending: already in flight fleet-wide
        if to_clear:
            await asyncio.to_thread(self.fleet.clear_quarantine, to_clear)
        if to_requeue:
            reopened = await asyncio.to_thread(self.fleet.requeue,
                                               to_requeue)
            sub.leased += len(reopened)
            # Not reopened means another front-end requeued it first —
            # the work is in flight again either way; share it.
            sub.shared += len(to_requeue) - len(reopened)

    # -- resolution ------------------------------------------------------------

    async def _watch(self) -> None:
        """Tail the queue WAL; resolve subscribers as workers finish.

        Also the deadline sweeper: when any hash this server enqueued
        with a deadline comes due, one fleet transaction expires every
        pending, unleased spec past its deadline — the resulting
        ``expired`` records flow back through this very tail and
        resolve the subscribers.
        """
        while True:
            await self._sweep_deadlines()
            records, self._queue_offset = await asyncio.to_thread(
                wal.read_tail, self.fleet.queue_path, self._queue_offset
            )
            for record in records:
                kind = record.get("kind")
                spec_hash = str(record.get("spec", ""))
                if not spec_hash or spec_hash not in self._inflight:
                    continue
                if kind == KIND_DONE:
                    entry = await asyncio.to_thread(
                        self._load_entry, spec_hash
                    )
                    if entry is None:
                        # Promised by the WAL but unreadable: a broken
                        # promise, not a verdict — requeue so the fleet
                        # simulates it afresh (the quarantine bound
                        # caps how often a rotting entry can recycle).
                        await self._requeue_broken(spec_hash)
                        continue
                    self._resolve_done(
                        spec_hash, entry, source="simulated",
                        seconds=float(record.get("seconds", 0.0)),
                    )
                elif kind == KIND_FAILED:
                    failure = record.get("failure")
                    if isinstance(failure, dict):
                        self._resolve_failed(spec_hash, failure)
                elif kind == KIND_QUARANTINE:
                    failure = record.get("failure")
                    if isinstance(failure, dict):
                        self.quarantined_total += 1
                        print(f"serve: quarantined poison spec "
                              f"{spec_hash[:12]}…", file=sys.stderr)
                        sys.stderr.flush()
                        self._resolve_failed(spec_hash, failure,
                                             quarantined=True)
                elif kind == KIND_EXPIRED:
                    failure = record.get("failure")
                    if isinstance(failure, dict):
                        self.expired_total += 1
                        self._resolve_failed(spec_hash, failure,
                                             expired=True)
            await asyncio.sleep(self.watch_seconds)

    async def _sweep_deadlines(self) -> None:
        """Expire undispatched past-deadline work (watcher tick half)."""
        if not self._deadlines:
            return
        now = time.time()
        due = [spec_hash for spec_hash, deadline in self._deadlines.items()
               if deadline <= now]
        if not due:
            return
        # One transaction covers every due hash; a due hash that is
        # leased right now is legitimately running (claimed in time)
        # and resolves through its worker instead.
        await asyncio.to_thread(self.fleet.expire_deadlines)
        for spec_hash in due:
            self._deadlines.pop(spec_hash, None)

    async def _requeue_broken(self, spec_hash: str) -> None:
        """Re-open a ``done`` spec whose promised entry no longer reads."""
        snap = await asyncio.to_thread(self.fleet.snapshot)
        payload = snap.enqueued.get(spec_hash)
        if payload is None:
            # No payload to re-run from: surface the broken promise as
            # a failure rather than hanging the subscribers.
            self._resolve_failed(spec_hash, {
                "spec_hash": spec_hash,
                "benchmark": "?", "mechanism": "?",
                "attempts": 1,
                "error": "result store entry unreadable",
            })
            return
        await asyncio.to_thread(self.fleet.requeue, {spec_hash: payload})

    def _resolve_done(
        self,
        spec_hash: str,
        entry: Dict[str, Any],
        source: str,
        seconds: float,
    ) -> None:
        """Stream one finished spec to every subscriber (event loop only)."""
        result_payload = entry["result"]
        self._deadlines.pop(spec_hash, None)
        try:
            result = RunResult(**result_payload)
            harvest_result(result)
            metrics = derive_metrics(result)
        except (TypeError, ValueError):
            metrics = {}
        for sub in self._inflight.pop(spec_hash, []):
            if spec_hash not in sub.pending:
                continue
            sub.pending.discard(spec_hash)
            sub.outbox.put_nowait(encode_message(
                MSG_RESULT, spec=spec_hash, source=source,
                seconds=round(seconds, 6), result=result_payload,
                metrics=metrics, progress=sub.progress(),
            ))
            self._finish_if_complete(sub)

    def _resolve_failed(
        self, spec_hash: str, failure: Dict[str, Any],
        quarantined: bool = False, expired: bool = False,
    ) -> None:
        self._deadlines.pop(spec_hash, None)
        for sub in self._inflight.pop(spec_hash, []):
            if spec_hash not in sub.pending:
                continue
            sub.pending.discard(spec_hash)
            if quarantined:
                sub.quarantined += 1
            if expired:
                sub.expired += 1
            sub.outbox.put_nowait(encode_message(
                MSG_FAILED, spec=spec_hash, failure=failure,
                progress=sub.progress(),
            ))
            self._finish_if_complete(sub)

    def _finish_if_complete(self, sub: _Subscription) -> None:
        # Idempotent: resolutions inside _submit and the final check at
        # its tail may both observe the empty pending set.
        if not sub.pending and not sub.finished:
            sub.finished = True
            sub.outbox.put_nowait(sub.complete_message())
            sub.outbox.put_nowait(None)
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    # -- store access (thread side) --------------------------------------------

    def _load_entry(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """The verified store entry for ``spec_hash``, or None.

        Runs in a worker thread.  Uses the store's own offline
        verification (parse, version, checksum, addressing) so a rotted
        entry is a miss that re-simulates, exactly as ``get`` would
        treat it — the service never streams a result the store could
        not vouch for.
        """
        for path in (self.store.shard_path(spec_hash),
                     self.store.flat_path(spec_hash)):
            if self.store.verify_entry(path) is None:
                try:
                    payload = json.loads(path.read_text("utf-8"))
                except (OSError, ValueError):
                    # Vanished (or rotted) between verify and read:
                    # fall through to the other layout rather than
                    # declaring a miss the flat path could still serve.
                    continue
                if isinstance(payload, dict):
                    return payload
        return None
