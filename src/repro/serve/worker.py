"""One fleet worker: claim, simulate, store, resolve — repeat.

A worker is deliberately almost stateless: its whole contract with the
rest of the fleet is the lease book.  Per iteration it claims the first
free pending spec (:meth:`~repro.serve.fleet.Fleet.claim` — the lease
is durable before the claim returns), re-materialises the spec from the
payload the queue carries (hash-verified, so a corrupted queue record
can never run as the wrong spec), simulates it while a heartbeat
thread renews the lease at half the TTL (:class:`_LeaseRenewer` — a
simulation slower than the TTL must not get its spec reclaimed and run
twice), writes the result to the shared content-addressed store, and
only then appends the ``done`` record that releases the lease and
tells the server to notify subscribers.

Chaos: under a ``kill-worker`` plan the worker consults the schedule
*after* its lease is durable and only when the lease is the spec's
first (``count == 1``), then dies with ``os._exit`` exactly as an OOM
kill would take it — no cleanup, the lease left live.  Convergence is
then the fleet's job: the lease expires, the next claimant reclaims
with count 2, and count-2 leases never consult the schedule.

Drain mode (``drain=True``) is how CI and tests run fleets to
completion: the worker exits 0 once work has been seen and the queue is
fully resolved with no live leases.  Before any work arrives it idles
(the submitting clients may still be connecting), bounded by
``idle_timeout``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Optional

from repro.exec.faults import (
    KILL_WORKER_EXIT,
    FaultPlan,
    active_plan,
    should_kill_worker,
)
from repro.exec.policy import FailedRun
from repro.exec.store import ResultStore
from repro.serve.fleet import Claim, Fleet
from repro.serve.protocol import ProtocolError, spec_from_payload

#: How long an idle worker sleeps between claim attempts, seconds.
POLL_SECONDS = 0.05


class _LeaseRenewer:
    """Heartbeat thread keeping one claim's lease alive while it runs.

    A lease that silently outlives its TTL mid-simulation gets the spec
    reclaimed and simulated twice, so the worker renews at half the TTL
    for as long as the simulation (and the store/resolve writes after
    it) are in progress.  :meth:`~repro.serve.fleet.Fleet.renew` checks
    ownership under the fleet lock and returns ``None`` when the lease
    was lost anyway (e.g. the host slept past the TTL) — at that point
    renewing stops; the reclaimant owns the spec now and a stale
    heartbeat must not stretch its deadline.
    """

    def __init__(self, fleet: Fleet, claim: Claim, worker_id: str) -> None:
        self.fleet = fleet
        self.claim = claim
        self.worker_id = worker_id
        self.interval = max(fleet.ttl * 0.5, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            renewed = self.fleet.renew(self.claim.spec_hash, self.worker_id)
            if renewed is None:
                return


class Worker:
    """The claim-simulate-resolve loop over one fleet."""

    def __init__(
        self,
        fleet: Fleet,
        store: ResultStore,
        worker_id: str,
        plan: Optional[FaultPlan] = None,
        poll: float = POLL_SECONDS,
    ) -> None:
        self.fleet = fleet
        self.store = store
        self.worker_id = worker_id
        self.plan = plan if plan is not None else active_plan()
        self.poll = poll
        self.completed = 0
        self.failed = 0

    def run_one(self) -> bool:
        """Claim and resolve one spec; False when nothing was claimable."""
        claim = self.fleet.claim(self.worker_id)
        if claim is None:
            return False
        self._maybe_die(claim)
        try:
            spec = spec_from_payload(claim.payload)
        except ProtocolError as exc:
            # A queue record that cannot re-materialise is resolved as a
            # failure — subscribers get an annotated hole instead of a
            # sweep that never completes.
            self._resolve_failure(claim, repr(exc))
            return True
        start = time.perf_counter()
        # The heartbeat spans the simulation *and* the store/resolve
        # writes after it, so the lease cannot lapse between finishing
        # a long run and making its resolution durable.
        with _LeaseRenewer(self.fleet, claim, self.worker_id):
            try:
                result = spec.execute()
            # simlint: allow[SIM601] converted to a FailedRun the fleet propagates to every subscriber
            except Exception as exc:
                self._resolve_failure(claim, repr(exc),
                                      benchmark=spec.benchmark,
                                      mechanism=spec.mechanism,
                                      elapsed=time.perf_counter() - start)
                return True
            seconds = time.perf_counter() - start
            # Store first, then resolve: the ``done`` record promises the
            # result is re-readable (same write order as the sweep journal).
            self.store.put(spec, result)
            self.fleet.mark_done(claim.spec_hash, self.worker_id, seconds)
        self.completed += 1
        return True

    def run(
        self,
        drain: bool = False,
        idle_timeout: Optional[float] = None,
    ) -> int:
        """The worker loop; returns an exit status.

        ``drain=False`` serves forever (a long-lived fleet member).
        ``drain=True`` exits 0 once the queue has been seen non-empty
        and is fully resolved with no live leases; ``idle_timeout``
        bounds how long to wait for work to appear at all (exit 0 —
        an empty fleet run is not an error).
        """
        idle_since = time.monotonic()
        seen_work = False
        while True:
            if self.run_one():
                seen_work = True
                idle_since = time.monotonic()
                continue
            if drain:
                snap = self.fleet.snapshot()
                if snap.enqueued and snap.drained:
                    return 0
                if (not seen_work and idle_timeout is not None
                        and time.monotonic() - idle_since > idle_timeout):
                    return 0
            time.sleep(self.poll)

    # -- internals ------------------------------------------------------------

    def _maybe_die(self, claim: Claim) -> None:
        """Chaos mode: die like an OOM-killed worker, lease left live.

        Fires only on the spec's first lease — see the module
        docstring for why that makes chaos fleets converge.
        """
        if claim.lease_count != 1:
            return
        if not should_kill_worker(self.plan, claim.spec_hash):
            return
        print(
            f"faults: injected worker kill ({self.worker_id}, lease on "
            f"{claim.spec_hash[:12]}… left to expire)",
            file=sys.stderr,
        )
        sys.stderr.flush()
        os._exit(KILL_WORKER_EXIT)

    def _resolve_failure(
        self,
        claim: Claim,
        error: str,
        benchmark: str = "",
        mechanism: str = "",
        elapsed: float = 0.0,
    ) -> None:
        payload = claim.payload
        failure = FailedRun(
            spec_hash=claim.spec_hash,
            benchmark=benchmark or str(payload.get("benchmark", "?")),
            mechanism=mechanism or str(payload.get("mechanism", "?")),
            attempts=claim.lease_count,
            error=error,
            elapsed=round(elapsed, 6),
        )
        print(f"worker {self.worker_id}: giving up: {failure.summary()}",
              file=sys.stderr)
        self.fleet.mark_failed(failure, self.worker_id)
        self.failed += 1
