"""One fleet worker: claim, simulate, store, resolve — repeat.

A worker is deliberately almost stateless: its whole contract with the
rest of the fleet is the lease book.  Per iteration it claims the first
free pending spec (:meth:`~repro.serve.fleet.Fleet.claim` — the lease
is durable before the claim returns), re-materialises the spec from the
payload the queue carries (hash-verified, so a corrupted queue record
can never run as the wrong spec), simulates it while a heartbeat
thread renews the lease at half the TTL (:class:`_LeaseRenewer` — a
simulation slower than the TTL must not get its spec reclaimed and run
twice), writes the result to the shared content-addressed store, and
only then appends the ``done`` record that releases the lease and
tells the server to notify subscribers.

Chaos: under a ``kill-worker`` plan the worker consults the schedule
*after* its lease is durable and only when the lease is the spec's
first (``count == 1``), then dies with ``os._exit`` exactly as an OOM
kill would take it — no cleanup, the lease left live.  Convergence is
then the fleet's job: the lease expires, the next claimant reclaims
with count 2, and count-2 leases never consult the schedule.  With
``checkpoint_every`` armed, ``kill-midrun`` is the same shape cut
deeper: the worker dies *mid-simulation* right after a snapshot lands,
and the count-2 reclaimant resumes from that snapshot instead of
instruction zero (:mod:`repro.exec.checkpoint`) — bit-identical either
way.

Drain mode (``drain=True``) is how CI and tests run fleets to
completion: the worker exits 0 once work has been seen and the queue is
fully resolved with no live leases.  Before any work arrives it idles
(the submitting clients may still be connecting), bounded by
``idle_timeout``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Optional

from repro.exec.checkpoint import Checkpointer
from repro.exec.faults import (
    KILL_WORKER_EXIT,
    FaultPlan,
    active_plan,
    maybe_corrupt_store_entry,
    should_kill_worker,
    should_poison,
)
from repro.exec.policy import FailedRun
from repro.exec.store import ResultStore
from repro.serve.fleet import Claim, Fleet
from repro.serve.protocol import ProtocolError, spec_from_payload

#: How long an idle worker sleeps between claim attempts, seconds.
POLL_SECONDS = 0.05

#: How long a drain-mode worker requires the queue to *stay* resolved
#: before exiting, seconds.  A ``done`` record is a promise the server's
#: watcher audits shortly after it lands; when the promised store entry
#: is unreadable (torn by a crash or chaos) the audit requeues the spec.
#: A worker that quit the instant the queue looked resolved could strand
#: that requeue with no fleet left to serve it, so drain exits only
#: after the resolution survives a settle window comfortably longer
#: than the watcher tick.
DRAIN_SETTLE_SECONDS = 0.5


class _LeaseRenewer:
    """Heartbeat thread keeping one claim's lease alive while it runs.

    A lease that silently outlives its TTL mid-simulation gets the spec
    reclaimed and simulated twice, so the worker renews at half the TTL
    for as long as the simulation (and the store/resolve writes after
    it) are in progress.  :meth:`~repro.serve.fleet.Fleet.renew` checks
    ownership under the fleet lock and returns ``None`` when the lease
    was lost anyway (e.g. the host slept past the TTL) — at that point
    renewing stops; the reclaimant owns the spec now and a stale
    heartbeat must not stretch its deadline.
    """

    def __init__(self, fleet: Fleet, claim: Claim, worker_id: str) -> None:
        self.fleet = fleet
        self.claim = claim
        self.worker_id = worker_id
        self.interval = max(fleet.ttl * 0.5, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            renewed = self.fleet.renew(self.claim.spec_hash, self.worker_id)
            if renewed is None:
                return


class Worker:
    """The claim-simulate-resolve loop over one fleet."""

    def __init__(
        self,
        fleet: Fleet,
        store: ResultStore,
        worker_id: str,
        plan: Optional[FaultPlan] = None,
        poll: float = POLL_SECONDS,
        checkpoint_every: int = 0,
    ) -> None:
        self.fleet = fleet
        self.store = store
        self.worker_id = worker_id
        self.plan = plan if plan is not None else active_plan()
        self.poll = poll
        self.checkpoint_every = max(0, int(checkpoint_every))
        self.completed = 0
        self.failed = 0

    def run_one(self) -> bool:
        """Claim and resolve one spec; False when nothing was claimable."""
        claim = self.fleet.claim(self.worker_id)
        if claim is None:
            return False
        self._maybe_die(claim)
        if claim.deadline is not None and claim.deadline <= time.time():
            # Deadline propagation, worker half: the submission's
            # deadline passed between claim and here — nobody wants
            # this result anymore, so don't burn a simulation on it.
            print(
                f"worker {self.worker_id}: deadline passed for "
                f"{claim.spec_hash[:12]}…; resolving as expired",
                file=sys.stderr,
            )
            self.fleet.mark_expired(claim.spec_hash, self.worker_id)
            self.failed += 1
            return True
        try:
            spec = spec_from_payload(claim.payload)
        except ProtocolError as exc:
            # A queue record that cannot re-materialise is resolved as a
            # failure — subscribers get an annotated hole instead of a
            # sweep that never completes.
            self._resolve_failure(claim, repr(exc))
            return True
        start = time.perf_counter()
        ckpt = self._checkpointer(claim)
        # The heartbeat spans the simulation *and* the store/resolve
        # writes after it, so the lease cannot lapse between finishing
        # a long run and making its resolution durable.
        with _LeaseRenewer(self.fleet, claim, self.worker_id):
            try:
                # Only pass the kwarg when armed: spec doubles (and any
                # older execute() signature) stay callable as-is.
                result = (spec.execute(checkpoint=ckpt) if ckpt is not None
                          else spec.execute())
            # simlint: allow[SIM601] converted to a FailedRun the fleet propagates to every subscriber
            except Exception as exc:
                self._resolve_failure(claim, repr(exc),
                                      benchmark=spec.benchmark,
                                      mechanism=spec.mechanism,
                                      elapsed=time.perf_counter() - start)
                return True
            seconds = time.perf_counter() - start
            # Store first, then resolve: the ``done`` record promises the
            # result is re-readable (same write order as the sweep journal).
            try:
                self.store.put(spec, result,
                               fault_attempt=claim.lease_count)
                if claim.lease_count == 1:
                    # One-shot torn-entry chaos: the server's watcher
                    # finds the promised entry unreadable and requeues;
                    # the reclaim (lease 2) never consults the schedule.
                    maybe_corrupt_store_entry(
                        self.plan, self.store.path_for(spec),
                        claim.spec_hash, 1,
                    )
                self.fleet.mark_done(claim.spec_hash, self.worker_id,
                                     seconds, lease_count=claim.lease_count)
            except OSError as exc:
                # A failed *write* (ENOSPC, a yanked filesystem): the
                # store and WAL both fail clean, so nothing durable
                # claims the result exists.  Release the lease now —
                # the next claimant re-runs the spec without waiting
                # out the TTL, and its writes skip the one-shot
                # schedule.
                print(
                    f"worker {self.worker_id}: write failed for "
                    f"{claim.spec_hash[:12]}… ({exc}); releasing lease "
                    "for a clean re-run",
                    file=sys.stderr,
                )
                self.fleet.release(claim.spec_hash, self.worker_id)
                return True
        if ckpt is not None:
            # The result is durable and promised; its snapshots served
            # their purpose (checkpoints are a cache, never an artifact).
            ckpt.discard()
        self.completed += 1
        return True

    def run(
        self,
        drain: bool = False,
        idle_timeout: Optional[float] = None,
    ) -> int:
        """The worker loop; returns an exit status.

        ``drain=False`` serves forever (a long-lived fleet member).
        ``drain=True`` exits 0 once the queue has been seen non-empty
        and has stayed fully resolved (no pending work, no live leases)
        for :data:`DRAIN_SETTLE_SECONDS`; ``idle_timeout`` bounds how
        long to wait for work to appear at all (exit 0 — an empty fleet
        run is not an error).
        """
        idle_since = time.monotonic()
        seen_work = False
        drained_since: Optional[float] = None
        while True:
            if self.run_one():
                seen_work = True
                idle_since = time.monotonic()
                drained_since = None
                continue
            if drain:
                snap = self.fleet.snapshot()
                if snap.enqueued and snap.drained:
                    now = time.monotonic()
                    if drained_since is None:
                        drained_since = now
                    if now - drained_since >= DRAIN_SETTLE_SECONDS:
                        return 0
                else:
                    drained_since = None
                    if (not seen_work and idle_timeout is not None
                            and time.monotonic() - idle_since > idle_timeout):
                        return 0
            time.sleep(self.poll)

    # -- internals ------------------------------------------------------------

    def _checkpointer(self, claim: Claim) -> Optional[Checkpointer]:
        """Mid-run durability for one claim, when the fleet runs with it.

        ``attempt`` is the lease count, so the one-shot mid-run chaos
        schedules (``kill-midrun``, ``corrupt-checkpoint``) fire only on
        a spec's first lease — the same convergence shape as
        ``kill-worker``.  Unlike the executor's in-process variant, a
        fleet worker dies for real (``os._exit``): the lease lapses, the
        reclaimant's lease count is 2, and its :meth:`Checkpointer.load`
        resumes from the snapshot the dead worker cut.
        """
        if not self.checkpoint_every:
            return None
        return Checkpointer(
            self.store.ckpt_root, claim.spec_hash, self.checkpoint_every,
            attempt=claim.lease_count, plan=self.plan,
            kill_exit=KILL_WORKER_EXIT,
        )

    def _maybe_die(self, claim: Claim) -> None:
        """Chaos mode: die like an OOM-killed worker, lease left live.

        Two schedules, opposite shapes.  ``poison`` fires on **every**
        lease of a matching spec — the deterministic crash loop only
        the quarantine bound can stop.  ``kill-worker`` fires only on a
        spec's first lease — see the module docstring for why that
        makes plain chaos fleets converge.
        """
        if should_poison(self.plan, claim.spec_hash):
            print(
                f"faults: poison spec {claim.spec_hash[:12]}… killed "
                f"{self.worker_id} (lease {claim.lease_count}; every "
                "lease dies until quarantine)",
                file=sys.stderr,
            )
            sys.stderr.flush()
            os._exit(KILL_WORKER_EXIT)
        if claim.lease_count != 1:
            return
        if not should_kill_worker(self.plan, claim.spec_hash):
            return
        print(
            f"faults: injected worker kill ({self.worker_id}, lease on "
            f"{claim.spec_hash[:12]}… left to expire)",
            file=sys.stderr,
        )
        sys.stderr.flush()
        os._exit(KILL_WORKER_EXIT)

    def _resolve_failure(
        self,
        claim: Claim,
        error: str,
        benchmark: str = "",
        mechanism: str = "",
        elapsed: float = 0.0,
    ) -> None:
        payload = claim.payload
        failure = FailedRun(
            spec_hash=claim.spec_hash,
            benchmark=benchmark or str(payload.get("benchmark", "?")),
            mechanism=mechanism or str(payload.get("mechanism", "?")),
            attempts=claim.lease_count,
            error=error,
            elapsed=round(elapsed, 6),
        )
        print(f"worker {self.worker_id}: giving up: {failure.summary()}",
              file=sys.stderr)
        self.fleet.mark_failed(failure, self.worker_id)
        self.failed += 1
