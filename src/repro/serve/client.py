"""Client side: a blocking submitter and the drop-in ServeExecutor.

:class:`SweepClient` is deliberately synchronous — the CLI and the
executor it serves are synchronous, and one submission is one
connection: connect, send the ``submit`` line, read streamed
``result``/``failed`` messages until ``complete``.  Messages arrive in
resolution order; the client indexes them by content hash, so callers
reassemble their own submission order trivially.

:class:`ServeExecutor` is the headline integration: a subclass of
:class:`~repro.exec.executor.Executor` that overrides **only** the
simulation fan-out.  Memoisation, store read-through, batch dedupe,
ordering, ``run_sweep`` grid assembly — every layer above
``_simulate`` is inherited unchanged, which is what makes
``python -m repro fig10 --serve SOCK`` produce byte-identical stdout
to the single-process path: the same specs resolve to the same
content-addressed results through the same rendering code; only *who
simulated them* differs.  Fleet accounting lands in the telemetry
(``leased``/``shared``) and surfaces in the stderr summary line only
when nonzero.
"""

from __future__ import annotations

import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.simulation import RunResult
from repro.exec.executor import Executor
from repro.exec.faults import stable_fraction
from repro.exec.policy import FailedRun, SpecExhausted
from repro.exec.runspec import RunSpec
from repro.exec.telemetry import (
    SOURCE_FAILED,
    SOURCE_SIMULATED,
    SOURCE_STORE,
)
from repro.serve.protocol import (
    MSG_ACCEPTED,
    MSG_COMPLETE,
    MSG_ERROR,
    MSG_FAILED,
    MSG_OVERLOADED,
    MSG_RESULT,
    ProtocolError,
    decode_message,
    submit_message,
)

#: Default per-connection socket timeout, seconds.  Generous: a cold
#: fleet may take a while to chew through a large sweep; None disables.
DEFAULT_TIMEOUT = 600.0

#: How many ``overloaded`` sheds one submission rides out before giving
#: up.  Generous on purpose: with exponential backoff this spans far
#: longer than any transient burst, while still bounding a submission
#: against a server that will never have room.
MAX_SHED_RETRIES = 50

#: Ceiling on any single backoff sleep, seconds.
BACKOFF_CAP = 2.0


class ServeUnavailable(ConnectionError):
    """The sweep service could not be reached or refused the submission."""


@dataclass
class SubmitOutcome:
    """Everything one submission resolved, indexed by content hash."""

    results: Dict[str, RunResult] = field(default_factory=dict)
    failures: Dict[str, FailedRun] = field(default_factory=dict)
    #: hash -> the server's source tag ("simulated" | "store").
    sources: Dict[str, str] = field(default_factory=dict)
    #: hash -> fleet simulation wall seconds (0 for store answers).
    seconds: Dict[str, float] = field(default_factory=dict)
    #: hash -> the server's derived-rate dict for the result.
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    leased: int = 0
    shared: int = 0
    store_hits: int = 0
    #: ``overloaded`` refusals absorbed (and retried) on the way in.
    shed: int = 0
    #: Holes resolved by a fleet quarantine record (kind ``poison``).
    quarantined: int = 0
    #: Holes resolved by a deadline-expiry record (kind ``timeout``).
    expired: int = 0


class SweepClient:
    """One submission per connection over unix socket or TCP."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        client_id: str = "client",
        timeout: Optional[float] = DEFAULT_TIMEOUT,
    ) -> None:
        if socket_path is None and (host is None or port is None):
            raise ValueError("need a unix socket path or host+port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                conn.settimeout(self.timeout)
                conn.connect(self.socket_path)
            else:
                conn = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as exc:
            target = self.socket_path or f"{self.host}:{self.port}"
            raise ServeUnavailable(
                f"cannot reach the sweep service at {target}: {exc}"
            ) from None
        return conn

    def submit(
        self,
        specs: Sequence[RunSpec],
        deadline: Optional[float] = None,
        retry_failed: bool = False,
    ) -> SubmitOutcome:
        """Submit ``specs``; block until every unique hash resolves.

        An ``overloaded`` answer is not a failure: the server quoted a
        deterministic ``retry_after`` and reserved nothing, so the
        client sleeps a seeded, exponentially growing backoff (jittered
        per client so a shed burst does not re-arrive in lockstep) and
        resubmits, up to :data:`MAX_SHED_RETRIES` times.

        ``deadline`` is absolute epoch seconds: specs the fleet cannot
        start by then come back as ``kind="timeout"`` holes.
        ``retry_failed`` asks the server to re-open recorded failures
        (quarantined specs included) instead of replaying them.
        """
        outcome = SubmitOutcome()
        if not specs:
            return outcome
        message = submit_message(list(specs), self.client_id,
                                 deadline=deadline,
                                 retry_failed=retry_failed)
        attempt = 0
        while True:
            attempt += 1
            conn = self._connect()
            try:
                conn.sendall(message)
                stream = conn.makefile("rb")
                try:
                    retry_after = self._read_stream(stream, outcome)
                finally:
                    stream.close()
            finally:
                conn.close()
            if retry_after is None:
                return outcome
            outcome.shed += 1
            if attempt >= MAX_SHED_RETRIES:
                raise ServeUnavailable(
                    f"server still overloaded after {attempt} submission "
                    "attempts"
                )
            time.sleep(self._backoff(retry_after, attempt))

    def _backoff(self, retry_after: float, attempt: int) -> float:
        """Seconds to wait after shed number ``attempt``.

        Deterministic: exponential in the attempt with a [0, 1)-scaled
        jitter from a SHA-256 of (client id, attempt) — same discipline
        as the retry policy's backoff — so overload tests converge
        identically run to run, yet distinct clients never hammer back
        in lockstep.
        """
        base = max(retry_after, 0.001)
        raw = base * (2.0 ** (attempt - 1))
        jitter = stable_fraction(f"{self.client_id}:shed:{attempt}")
        return min(raw * (1.0 + jitter), BACKOFF_CAP)

    def _read_stream(self, stream, outcome: SubmitOutcome) -> Optional[float]:
        while True:
            line = stream.readline()
            if not line:
                raise ServeUnavailable(
                    "server closed the stream before completing the "
                    "submission"
                )
            record = decode_message(line)
            kind = record["kind"]
            if kind == MSG_ACCEPTED:
                continue
            if kind == MSG_RESULT:
                spec_hash = str(record.get("spec", ""))
                try:
                    outcome.results[spec_hash] = RunResult(**record["result"])
                except (KeyError, TypeError) as exc:
                    raise ProtocolError(
                        f"unusable result payload for {spec_hash[:12]}…: "
                        f"{exc!r}"
                    ) from None
                outcome.sources[spec_hash] = str(
                    record.get("source", "simulated"))
                outcome.seconds[spec_hash] = float(record.get("seconds", 0.0))
                metrics = record.get("metrics")
                if isinstance(metrics, dict):
                    outcome.metrics[spec_hash] = {
                        str(k): float(v) for k, v in metrics.items()
                    }
                continue
            if kind == MSG_FAILED:
                spec_hash = str(record.get("spec", ""))
                failure = record.get("failure")
                if isinstance(failure, dict):
                    try:
                        outcome.failures[spec_hash] = FailedRun.from_dict(
                            failure)
                        continue
                    except TypeError:
                        pass
                outcome.failures[spec_hash] = FailedRun(
                    spec_hash=spec_hash, benchmark="?", mechanism="?",
                    attempts=1, error="fleet reported an unparseable failure",
                )
                continue
            if kind == MSG_COMPLETE:
                outcome.leased = int(record.get("leased", 0))
                outcome.shared = int(record.get("shared", 0))
                outcome.store_hits = int(record.get("store", 0))
                outcome.quarantined = int(record.get("quarantined", 0))
                outcome.expired = int(record.get("expired", 0))
                return None
            if kind == MSG_OVERLOADED:
                # Nothing was reserved; the caller backs off and
                # resubmits the whole message.
                return float(record.get("retry_after", 0.05))
            if kind == MSG_ERROR:
                raise ServeUnavailable(
                    f"server rejected the submission: {record.get('message')}"
                )
            # Unknown-but-versioned kinds are skipped: an older client
            # keeps working against a server that streams more detail.


class ServeExecutor(Executor):
    """An :class:`Executor` whose simulations run on the fleet.

    Only ``_simulate`` differs from the parent: instead of fanning out
    over a local process pool, unresolved specs are submitted to the
    sweep service and the streamed results are absorbed into the same
    memo/telemetry/journal structures the parent uses.  Everything
    observable above this layer — result values, ordering, exhibit
    stdout — is identical by construction.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        client_id: str = "client",
        deadline: Optional[float] = None,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.client = SweepClient(
            socket_path=socket_path, host=host, port=port,
            client_id=client_id,
        )
        #: Relative seconds granted per submission; converted to the
        #: absolute wire deadline at submit time.  None = no deadline.
        self.deadline = deadline

    def _simulate(self, specs: List[RunSpec]) -> None:
        absolute = (time.time() + self.deadline
                    if self.deadline is not None else None)
        outcome = self.client.submit(specs, deadline=absolute,
                                     retry_failed=self.retry_failed)
        self.telemetry.leased += outcome.leased
        self.telemetry.shared += outcome.shared
        self.telemetry.shed += outcome.shed
        self.telemetry.quarantined += outcome.quarantined
        self.telemetry.expired += outcome.expired
        total = len(specs)
        done = 0
        for spec in specs:
            key = spec.content_hash
            result = outcome.results.get(key)
            if result is not None:
                done += 1
                self._absorb_remote(spec, key, result, outcome, done, total)
                continue
            failure = outcome.failures.get(key)
            if failure is None:
                failure = FailedRun(
                    spec_hash=key, benchmark=spec.benchmark,
                    mechanism=spec.mechanism, attempts=1,
                    error="submission completed without resolving this spec",
                )
            done += 1
            self._absorb_failure(spec, key, failure, done, total)

    def _absorb_remote(
        self,
        spec: RunSpec,
        key: str,
        result: RunResult,
        outcome: SubmitOutcome,
        done: int,
        total: int,
    ) -> None:
        self._memo[key] = result
        self._first_attempt_at.pop(key, None)
        fleet_simulated = outcome.sources.get(key) != "store"
        source = SOURCE_SIMULATED if fleet_simulated else SOURCE_STORE
        seconds = outcome.seconds.get(key, 0.0) if fleet_simulated else 0.0
        self._record(spec, source, seconds)
        if self._journal is not None:
            self._journal.done(key, spec.benchmark, spec.mechanism,
                               source, seconds)
        self._note_progress(done, total, spec)

    def _absorb_failure(
        self,
        spec: RunSpec,
        key: str,
        failure: FailedRun,
        done: int,
        total: int,
    ) -> None:
        self.telemetry.failures += 1
        if self._journal is not None:
            self._journal.failed(failure)
        if self.policy.strict:
            raise SpecExhausted(failure)
        print(f"executor: giving up: {failure.summary()}", file=sys.stderr)
        self._memo[key] = failure
        self._record(spec, SOURCE_FAILED, failure.elapsed)
        self._note_progress(done, total, spec)
