"""Value-carrying functional cache hierarchy and the load-value checker.

The functional model executes the same protocol the timing model enforces —
two-level writeback caches, allocate-on-write, LRU — but carries the actual
8-byte words of every resident line.  A load's value is read from L1; a
miss fills from L2; an L2 miss fills from backing memory; dirty evictions
write the line's words down.  Backing memory starts from a snapshot of the
workload's functional image and is updated *only by writebacks*, so any
protocol violation leaves it (and subsequent fills) stale — exactly how the
paper's OoOSysC validation caught the forgotten dirty bit.

:class:`FaultInjector` makes that story testable: it can drop dirty bits,
suppress writebacks, or corrupt fills on request, and
:func:`run_value_check` demonstrably flags the resulting wrong values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CacheConfig, MachineConfig, baseline_config
from repro.isa.instr import ADDR, EXTRA, OP, Op
from repro.workloads.image import WORD_BYTES, MemoryImage


@dataclass(frozen=True)
class ValueMismatch:
    """One load whose cached value diverged from the emulator."""

    index: int          # trace position
    addr: int
    expected: int
    actual: int
    level: str          # where the wrong value was found

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"load #{self.index} @0x{self.addr:x}: cached 0x{self.actual:x}"
                f" != emulator 0x{self.expected:x} (from {self.level})")


class FaultInjector:
    """Deliberate protocol defects, for proving the checker works.

    Each knob is a countdown: the fault fires on the Nth opportunity then
    disarms, so tests can seed exactly one bug.
    """

    def __init__(
        self,
        drop_dirty_on_store: int = 0,
        skip_writeback: int = 0,
        corrupt_fill: int = 0,
    ):
        self.drop_dirty_on_store = drop_dirty_on_store
        self.skip_writeback = skip_writeback
        self.corrupt_fill = corrupt_fill

    def _fire(self, attr: str) -> bool:
        count = getattr(self, attr)
        if count > 0:
            setattr(self, attr, count - 1)
            return count == 1
        return False

    def should_drop_dirty(self) -> bool:
        return self._fire("drop_dirty_on_store")

    def should_skip_writeback(self) -> bool:
        return self._fire("skip_writeback")

    def should_corrupt_fill(self) -> bool:
        return self._fire("corrupt_fill")


class _Line:
    __slots__ = ("tag", "dirty", "words")

    def __init__(self, tag: int, words: List[int]):
        self.tag = tag
        self.dirty = False
        self.words = words


class FunctionalCache:
    """One value-carrying cache level (LRU, writeback, allocate-on-write)."""

    def __init__(
        self,
        config: CacheConfig,
        fetch_line: Callable[[int], List[int]],
        writeback_line: Callable[[int, List[int]], None],
        fault: Optional[FaultInjector] = None,
    ):
        self.config = config
        self.line_bits = config.line_size.bit_length() - 1
        self.words_per_line = config.line_size // WORD_BYTES
        self._set_mask = config.n_sets - 1
        self._sets: List[List[_Line]] = [[] for _ in range(config.n_sets)]
        self._fetch_line = fetch_line
        self._writeback_line = writeback_line
        self.fault = fault or FaultInjector()
        self.fills = 0
        self.writebacks = 0

    # -- geometry -------------------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int, int]:
        block = addr >> self.line_bits
        return block, block & self._set_mask, (addr >> 3) % self.words_per_line

    def line_addr(self, block: int) -> int:
        return block << self.line_bits

    # -- the protocol ------------------------------------------------------------

    def _find(self, set_idx: int, block: int) -> Optional[_Line]:
        lines = self._sets[set_idx]
        for i, line in enumerate(lines):
            if line.tag == block:
                if i:
                    del lines[i]
                    lines.insert(0, line)
                return line
        return None

    def _fill(self, set_idx: int, block: int) -> _Line:
        words = list(self._fetch_line(self.line_addr(block)))
        if self.fault.should_corrupt_fill():
            words[0] ^= 0xDEAD
        line = _Line(block, words)
        lines = self._sets[set_idx]
        if len(lines) >= self.config.assoc:
            victim = lines.pop()
            if victim.dirty and not self.fault.should_skip_writeback():
                self._writeback_line(self.line_addr(victim.tag), victim.words)
                self.writebacks += 1
        lines.insert(0, line)
        self.fills += 1
        return line

    def load(self, addr: int) -> int:
        block, set_idx, word = self._locate(addr)
        line = self._find(set_idx, block) or self._fill(set_idx, block)
        return line.words[word]

    def store(self, addr: int, value: int) -> None:
        block, set_idx, word = self._locate(addr)
        line = self._find(set_idx, block) or self._fill(set_idx, block)
        line.words[word] = value
        if not self.fault.should_drop_dirty():
            line.dirty = True

    def flush(self) -> None:
        """Write every dirty line back (end-of-run reconciliation)."""
        for lines in self._sets:
            for line in lines:
                if line.dirty:
                    if not self.fault.should_skip_writeback():
                        self._writeback_line(
                            self.line_addr(line.tag), line.words
                        )
                        self.writebacks += 1
                    line.dirty = False


class FunctionalHierarchy:
    """L1D + L2 + backing memory, all carrying real values."""

    def __init__(
        self,
        image: MemoryImage,
        config: Optional[MachineConfig] = None,
        fault: Optional[FaultInjector] = None,
        fault_level: str = "l1",
    ):
        config = config or baseline_config()
        # Backing memory: a snapshot of the image, updated only by
        # writebacks arriving from L2.
        self._backing: Dict[int, int] = dict(image._words)
        self._backing_reader = image  # for words never written (garbage fn)

        def read_backing_line(line_addr: int, nbytes: int) -> List[int]:
            words = []
            for off in range(0, nbytes, WORD_BYTES):
                word_addr = line_addr + off
                if word_addr in self._backing:
                    words.append(self._backing[word_addr])
                else:
                    words.append(self._backing_reader._uninitialised(word_addr))
            return words

        def write_backing_line(line_addr: int, words: Sequence[int]) -> None:
            for i, value in enumerate(words):
                self._backing[line_addr + i * WORD_BYTES] = value

        l1_fault = fault if fault_level == "l1" else None
        l2_fault = fault if fault_level == "l2" else None

        self.l2 = FunctionalCache(
            config.l2,
            fetch_line=lambda addr: read_backing_line(addr, config.l2.line_size),
            writeback_line=write_backing_line,
            fault=l2_fault,
        )

        def fetch_from_l2(line_addr: int) -> List[int]:
            return [
                self.l2.load(line_addr + i * WORD_BYTES)
                for i in range(config.l1d.line_size // WORD_BYTES)
            ]

        def writeback_to_l2(line_addr: int, words: Sequence[int]) -> None:
            for i, value in enumerate(words):
                self.l2.store(line_addr + i * WORD_BYTES, value)

        self.l1d = FunctionalCache(
            config.l1d,
            fetch_line=fetch_from_l2,
            writeback_line=writeback_to_l2,
            fault=l1_fault,
        )

    def load(self, addr: int) -> int:
        return self.l1d.load(addr)

    def store(self, addr: int, value: int) -> None:
        self.l1d.store(addr, value)

    def flush(self) -> None:
        self.l1d.flush()
        self.l2.flush()

    def backing_value(self, addr: int) -> int:
        word_addr = addr & ~(WORD_BYTES - 1)
        if word_addr in self._backing:
            return self._backing[word_addr]
        return self._backing_reader._uninitialised(word_addr)


def run_value_check(
    trace: Sequence,
    image: MemoryImage,
    config: Optional[MachineConfig] = None,
    fault: Optional[FaultInjector] = None,
    fault_level: str = "l1",
    max_mismatches: int = 16,
) -> List[ValueMismatch]:
    """Execute ``trace`` on the functional hierarchy vs a flat emulator.

    Returns the list of load-value mismatches (empty = the protocol is
    sound).  The emulator is a plain program-order memory; the hierarchy
    must agree with it on every load, and — after a final flush — backing
    memory must agree on every word the program wrote.
    """
    hierarchy = FunctionalHierarchy(image, config, fault, fault_level)
    emulator: Dict[int, int] = dict(image._words)
    mismatches: List[ValueMismatch] = []
    load_op, store_op = int(Op.LOAD), int(Op.STORE)
    written: Dict[int, int] = {}

    for index, record in enumerate(trace):
        op = record[OP]
        if op == store_op:
            addr = record[ADDR]
            value = record[EXTRA]
            hierarchy.store(addr, value)
            word_addr = addr & ~(WORD_BYTES - 1)
            emulator[word_addr] = value
            written[word_addr] = value
        elif op == load_op:
            addr = record[ADDR]
            actual = hierarchy.load(addr)
            word_addr = addr & ~(WORD_BYTES - 1)
            if word_addr in emulator:
                expected = emulator[word_addr]
            else:
                expected = image._uninitialised(word_addr)
            if actual != expected:
                mismatches.append(ValueMismatch(
                    index=index, addr=addr, expected=expected,
                    actual=actual, level="hierarchy",
                ))
                if len(mismatches) >= max_mismatches:
                    return mismatches

    # End-of-run: flush and reconcile backing memory with the emulator.
    hierarchy.flush()
    for word_addr, value in written.items():
        actual = hierarchy.backing_value(word_addr)
        if actual != value:
            mismatches.append(ValueMismatch(
                index=len(trace), addr=word_addr, expected=value,
                actual=actual, level="backing",
            ))
            if len(mismatches) >= max_mismatches:
                break
    return mismatches
