"""Execute-driven validation — the OoOSysC idea (paper Section 2.2).

The original MicroLib validated its cache models by plugging them into
OoOSysC, a processor model that "actually performs all computations": the
cache holds real data values, so any protocol bug — a dirty bit not set, a
writeback dropped, a stale line served — eventually surfaces as a load
returning the *wrong value*.  "Confronting the emulator with the simulator
for every memory request is a simple but powerful debugging tool."

This package provides that tool for this library:

* :class:`FunctionalHierarchy` — a value-carrying two-level writeback
  cache (same geometry and nominal policies as the timing model, no
  timing) that really executes loads and stores;
* :func:`run_value_check` — drives a trace through it while comparing
  every load against a program-order emulator; any divergence is reported
  with the full provenance;
* fault injection (:class:`FaultInjector`) — deliberately break the
  protocol (drop a dirty bit, skip a writeback, serve a stale fill) and
  confirm the checker catches it, reproducing the paper's debugging story.
"""

from repro.validation.funcsim import (
    FaultInjector,
    FunctionalCache,
    FunctionalHierarchy,
    ValueMismatch,
    run_value_check,
)

__all__ = [
    "FaultInjector",
    "FunctionalCache",
    "FunctionalHierarchy",
    "ValueMismatch",
    "run_value_check",
]
