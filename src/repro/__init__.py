"""repro — a reproduction of MicroLib (Gracia Pérez, Mouchard & Temam,
MICRO 2004): an open library of modular simulator components and a fair
quantitative comparison of hardware data-cache optimizations.

Quick start::

    from repro import run_benchmark
    print(run_benchmark("swim", "GHB").ipc)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core.comparison import ComparisonSuite
from repro.core.config import MachineConfig, baseline_config
from repro.core.results import ResultSet
from repro.core.simulation import RunResult, build_machine, run_benchmark, run_trace
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE, create
from repro.workloads.registry import ALL_BENCHMARKS

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "ALL_MECHANISMS",
    "BASELINE",
    "ComparisonSuite",
    "MachineConfig",
    "ResultSet",
    "RunResult",
    "baseline_config",
    "build_machine",
    "create",
    "run_benchmark",
    "run_trace",
    "__version__",
]
