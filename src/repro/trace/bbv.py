"""Basic-block-vector extraction (the front half of SimPoint).

A trace is cut into fixed-length instruction intervals; each interval is
summarised by a vector counting executions per basic block.  Without a
control-flow graph, a *basic block* is approximated as an aligned 64-byte
PC region — the granularity the Basic Block Vector generator effectively
sees for straight-line code, and sufficient for phase discovery because our
workload generators encode the phase in the PC stream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is optional (gated at use)
    np = None  # type: ignore[assignment]

from repro.isa.instr import PC

#: PC bits dropped when mapping a PC to its basic-block id.
_BLOCK_SHIFT = 6


def basic_block_vectors(
    trace: Sequence, interval: int = 2000
) -> Tuple[np.ndarray, List[int]]:
    """Summarise ``trace`` as per-interval basic-block frequency vectors.

    Returns ``(matrix, block_ids)``: ``matrix[i, j]`` is how often block
    ``block_ids[j]`` executed in interval ``i``, each row L1-normalised as
    SimPoint prescribes.  The final partial interval is kept when it covers
    at least half an interval, dropped otherwise.
    """
    if np is None:  # pragma: no cover - numpy present in the test env
        raise ModuleNotFoundError("numpy is required for basic-block vectors")
    if interval < 1:
        raise ValueError(f"interval must be positive, got {interval}")
    block_index: Dict[int, int] = {}
    rows: List[Dict[int, int]] = []
    current: Dict[int, int] = {}
    count = 0
    for record in trace:
        block = record[PC] >> _BLOCK_SHIFT
        index = block_index.setdefault(block, len(block_index))
        current[index] = current.get(index, 0) + 1
        count += 1
        if count == interval:
            rows.append(current)
            current = {}
            count = 0
    if count >= interval // 2 and current:
        rows.append(current)

    matrix = np.zeros((len(rows), len(block_index)))
    for i, row in enumerate(rows):
        for j, freq in row.items():
            matrix[i, j] = freq
    sums = matrix.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    matrix /= sums
    ordered = sorted(block_index, key=block_index.get)
    return matrix, ordered
