"""SimPoint: k-means over basic-block vectors, representative selection.

Implements the core of Sherwood et al.'s SimPoint (ASPLOS 2002) at our
scale: project the interval BBV matrix, cluster with k-means (several k
tried, best Bayesian-information-criterion-style score kept), and pick the
interval closest to the centroid of the *largest* cluster as the single
simulation point — matching the paper's methodology of "skipping up to the
first SimPoint" and simulating one representative trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is optional (gated at use)
    np = None  # type: ignore[assignment]

from repro.trace.bbv import basic_block_vectors


@dataclass(frozen=True)
class SimPointResult:
    """Outcome of SimPoint selection."""

    interval: int            # interval length used (instructions)
    chosen_interval: int     # index of the representative interval
    cluster_sizes: Tuple[int, ...]
    labels: Tuple[int, ...]  # cluster label per interval
    k: int

    @property
    def start_instruction(self) -> int:
        return self.chosen_interval * self.interval


def _kmeans(
    data: np.ndarray, k: int, seed: int = 7, iterations: int = 40
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Plain k-means; returns (labels, centroids, inertia)."""
    rng = np.random.RandomState(seed)
    n = data.shape[0]
    centroids = data[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = data[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the farthest point
                centroids[j] = data[distances.min(axis=1).argmax()]
    inertia = float(
        ((data - centroids[labels]) ** 2).sum()
    )
    return labels, centroids, inertia


def _bic_score(inertia: float, n: int, k: int, dims: int) -> float:
    """Lower is better: inertia penalised by model complexity (BIC-like)."""
    if n <= 1:
        return inertia
    return n * np.log(max(inertia / n, 1e-12)) + k * np.log(n) * max(dims, 1) * 0.05


def pick_simpoint(
    trace: Sequence, interval: int = 2000, max_k: int = 6, seed: int = 7
) -> SimPointResult:
    """Run the SimPoint pipeline on ``trace``; choose one representative."""
    matrix, _ = basic_block_vectors(trace, interval)
    n = matrix.shape[0]
    if n == 0:
        raise ValueError("trace too short for the chosen interval")
    # Dimensionality reduction via random projection (SimPoint uses 15 dims).
    dims = min(15, matrix.shape[1])
    rng = np.random.RandomState(seed)
    projection = rng.randn(matrix.shape[1], dims) / np.sqrt(dims)
    reduced = matrix @ projection

    best: Tuple[float, int, np.ndarray] = None  # (score, k, labels)
    for k in range(1, min(max_k, n) + 1):
        labels, _, inertia = _kmeans(reduced, k, seed=seed)
        score = _bic_score(inertia, n, k, dims)
        if best is None or score < best[0]:
            best = (score, k, labels)
    _, k, labels = best

    counts = np.bincount(labels, minlength=k)
    top_cluster = int(counts.argmax())
    members = np.flatnonzero(labels == top_cluster)
    centroid = reduced[members].mean(axis=0)
    distances = ((reduced[members] - centroid) ** 2).sum(axis=1)
    chosen = int(members[distances.argmin()])
    return SimPointResult(
        interval=interval,
        chosen_interval=chosen,
        cluster_sizes=tuple(int(c) for c in counts),
        labels=tuple(int(label) for label in labels),
        k=k,
    )


def simpoint_trace(
    trace: Sequence, length: int, interval: int = 2000, seed: int = 7
) -> List:
    """The paper's trace selection: ``length`` instructions starting at the
    chosen SimPoint ("skipping up to the first SimPoint")."""
    result = pick_simpoint(trace, interval=interval, seed=seed)
    start = result.start_instruction
    if start + length > len(trace):
        start = max(0, len(trace) - length)
    return list(trace[start:start + length])
