"""Trace selection: windows, basic-block vectors and SimPoint.

Section 3.5 of the paper compares the common "skip N, simulate M" practice
against SimPoint-selected traces and finds the choice alone can flip
research conclusions.  This package implements both:

* :func:`repro.trace.sampling.window` — the arbitrary skip-and-simulate
  slice;
* :mod:`repro.trace.bbv` — basic-block-vector extraction over fixed
  instruction intervals;
* :mod:`repro.trace.simpoint` — k-means clustering of BBVs (Sherwood et
  al.'s algorithm, numpy implementation) and representative-interval
  selection.
"""

from repro.trace.bbv import basic_block_vectors
from repro.trace.sampling import window
from repro.trace.simpoint import SimPointResult, pick_simpoint, simpoint_trace

__all__ = [
    "SimPointResult",
    "basic_block_vectors",
    "pick_simpoint",
    "simpoint_trace",
    "window",
]
