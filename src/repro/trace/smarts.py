"""SMARTS-style systematic sampling (Wunderlich et al., ISCA 2003).

The paper cites SMARTS alongside SimPoint as the rigorous alternatives to
arbitrary skip-and-simulate windows (Section 3.5).  SMARTS measures many
small, periodically spaced detailed windows instead of one long chunk, and
reports a confidence interval from the sample variance — turning "is this
trace representative?" into a statistical statement.

:func:`systematic_sample` extracts the windows; :func:`sampled_ipc` runs
each window on a fresh machine (with a warm-up prefix, SMARTS' functional
warming idea scaled down) and aggregates mean IPC with a CLT confidence
interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is optional (gated at use)
    np = None  # type: ignore[assignment]

from repro.core.config import MachineConfig
from repro.core.simulation import run_trace


@dataclass(frozen=True)
class SampledEstimate:
    """Mean IPC over the sampled windows with its confidence half-width."""

    mean_ipc: float
    half_width: float       # at the requested confidence level
    n_windows: int
    window_ipcs: Tuple[float, ...]

    @property
    def relative_error(self) -> float:
        if self.mean_ipc == 0:
            return 0.0
        return self.half_width / self.mean_ipc


def systematic_sample(
    trace: Sequence,
    n_windows: int,
    window: int,
    warmup: int = 0,
) -> List[Tuple[List, int]]:
    """Cut ``n_windows`` evenly spaced ``(prefix+window, measure_from)``.

    Each element is a slice ending with the measured window and starting
    ``warmup`` instructions earlier (cache warm-up), plus the index within
    the slice where measurement starts.
    """
    if n_windows < 1 or window < 1 or warmup < 0:
        raise ValueError("n_windows and window must be >= 1, warmup >= 0")
    needed = n_windows * window
    if needed > len(trace):
        raise ValueError(
            f"{n_windows} windows of {window} need {needed} instructions; "
            f"trace has {len(trace)}"
        )
    period = len(trace) // n_windows
    samples = []
    for k in range(n_windows):
        end = k * period + window
        start = max(0, k * period - warmup)
        samples.append((list(trace[start:end]), k * period - start))
    return samples


def sampled_ipc(
    trace: Sequence,
    n_windows: int = 10,
    window: int = 1000,
    warmup: int = 2000,
    confidence: float = 0.95,
    config: Optional[MachineConfig] = None,
    image=None,
) -> SampledEstimate:
    """SMARTS estimate of a trace's IPC from systematic windows."""
    if np is None:  # pragma: no cover - numpy present in the test env
        raise ModuleNotFoundError("numpy is required for SMARTS estimates")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    ipcs = []
    for slice_, measure_from in systematic_sample(
        trace, n_windows, window, warmup
    ):
        result = run_trace(slice_, None, config=config, image=image,
                           warmup_fraction=0.0)
        # Re-run measurement windowing by hand: the helper gives whole-slice
        # stats, so measure the window only.
        if measure_from:
            from repro.core.simulation import build_machine
            core, hierarchy = build_machine(config, None, image)
            stats = core.run(slice_, measure_from=measure_from)
            ipcs.append(stats.ipc)
        else:
            ipcs.append(result.ipc)
    data = np.asarray(ipcs)
    mean = float(data.mean())
    if len(data) > 1:
        # Normal-approximation CLT interval (SMARTS' large-sample regime).
        z = _z_value(confidence)
        half = float(z * data.std(ddof=1) / math.sqrt(len(data)))
    else:
        half = 0.0
    return SampledEstimate(
        mean_ipc=mean, half_width=half, n_windows=len(data),
        window_ipcs=tuple(float(x) for x in data),
    )


def _z_value(confidence: float) -> float:
    """Two-sided normal quantile via erf inversion (no scipy needed)."""
    # Newton iteration on erf(x/sqrt(2)) = confidence.
    target = confidence
    x = 1.0
    for _ in range(60):
        err = math.erf(x / math.sqrt(2)) - target
        slope = math.sqrt(2 / math.pi) * math.exp(-x * x / 2)
        if slope == 0:
            break
        step = err / slope
        x -= step
        if abs(step) < 1e-12:
            break
    return x
