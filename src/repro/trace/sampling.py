"""Arbitrary trace windows — the "skip 1 billion, simulate 2 billion" habit.

"Most researchers tend to skip an arbitrary (usually large) number of
instructions in a trace, then simulate the largest possible program chunk"
(Section 3.5).  :func:`window` is that practice, scaled.
"""

from __future__ import annotations

from typing import List, Sequence


def window(trace: Sequence, skip: int, length: int) -> List:
    """Return ``trace[skip : skip + length]`` with bounds checking.

    When the trace is too short for the requested window, the window is
    shifted back (never truncated silently) so experiments always compare
    equal-length slices.
    """
    if skip < 0 or length <= 0:
        raise ValueError(f"invalid window skip={skip} length={length}")
    if length > len(trace):
        raise ValueError(
            f"window length {length} exceeds trace length {len(trace)}"
        )
    if skip + length > len(trace):
        skip = len(trace) - length
    return list(trace[skip:skip + length])
