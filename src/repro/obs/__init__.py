"""repro.obs — the observability subsystem.

Three layers, one substrate every future perf PR measures itself
against:

* **tracing** (:mod:`repro.obs.tracing`) — span/event API with a
  near-zero-cost disabled path, instrumented through the kernel, the
  cache hierarchy, the DRAM models, the core and the executor;
  exports Chrome ``trace_event`` JSON viewable in Perfetto
  (``python -m repro run swim GHB --trace out.json``).
* **metrics** (:mod:`repro.obs.metrics`, :mod:`repro.obs.sampling`) —
  a registry harvesting every module's ``stats_report()`` into typed,
  labeled series with derived rates (IPC, MPKI, bus occupancy) and
  per-interval sampling on traced runs.
* **ledger** (:mod:`repro.obs.ledger`) — the persistent benchmark
  trajectory in ``BENCH_obs.json``; ``python -m repro.obs`` records,
  lists and diffs entries.

Only the stdlib is imported here: arming the tracer or harvesting
metrics never drags simulator modules in, so the kernel can import
:data:`~repro.obs.tracing.TRACER` without a cycle.
"""

from __future__ import annotations

from repro.obs.ledger import (
    DiffRow,
    Ledger,
    LedgerRecord,
    default_ledger_path,
    diff_records,
    host_fingerprint,
    make_record,
    peak_rss_kb,
    render_diff,
)
from repro.obs.metrics import (
    MetricPoint,
    MetricSeries,
    MetricsRegistry,
    derive_metrics,
    executor_summary_line,
    get_default_registry,
    harvest_executor,
    harvest_result,
    harvest_stats,
    reset_default_registry,
)
from repro.obs.sampling import IntervalSampler, maybe_sampler
from repro.obs.tracing import (
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    tracing_enabled,
    validate_trace,
    validate_trace_file,
)

__all__ = [
    "DiffRow",
    "IntervalSampler",
    "Ledger",
    "LedgerRecord",
    "MetricPoint",
    "MetricSeries",
    "MetricsRegistry",
    "TRACER",
    "Tracer",
    "default_ledger_path",
    "derive_metrics",
    "diff_records",
    "disable_tracing",
    "enable_tracing",
    "executor_summary_line",
    "get_default_registry",
    "harvest_executor",
    "harvest_result",
    "harvest_stats",
    "host_fingerprint",
    "make_record",
    "maybe_sampler",
    "peak_rss_kb",
    "render_diff",
    "reset_default_registry",
    "tracing_enabled",
    "validate_trace",
    "validate_trace_file",
]
