"""Structured run tracing with Chrome ``trace_event`` export.

The tracer answers the question the paper keeps asking of simulators:
*where does the time go?*  Instrumentation sites in the kernel, the cache
hierarchy, the DRAM models, the core and the executor emit **spans**
(begin/end pairs rendered as Chrome "X" complete events) and **instant**
/ **counter** events.  Exporting yields a JSON object in the Chrome
``trace_event`` format, directly loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Disabled path
-------------
Tracing is off by default and the off state must cost (almost) nothing:
simulations run in the same process that decides whether to observe
them.  The contract with instrumentation sites is:

* :data:`TRACER` is a process-wide singleton that is **never rebound** —
  sites may safely do ``from repro.obs.tracing import TRACER`` once and
  keep the reference;
* every site guards with ``if TRACER.enabled:`` (a plain attribute read
  and a branch) before building any argument dict or calling a method,
  so the disabled path never allocates;
* hot loops hoist ``tracing = TRACER.enabled`` into a local once per
  call, making the per-iteration cost a local-variable truth test.

``tests/test_obs.py`` holds an overhead guard asserting the guards add
under 2% wall-clock to a reference run.

Span names are **literal strings** at every call site (enforced by the
simlint SIM502 rule): dynamic names would allocate on the hot path and
fragment the Perfetto aggregation view.  Variable data belongs in event
``args``.
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Clock used for event timestamps.  Wall clock, deliberately: tracing
#: observes the *simulator*, not the simulation — the simulated cycle
#: counter travels in event args where a site finds it interesting.
_DEFAULT_CLOCK = time.perf_counter_ns


class Tracer:
    """Span/event recorder with Chrome ``trace_event`` JSON export.

    One instance is process-wide (:data:`TRACER`); tests may build
    private instances with a fake ``clock`` (a ``() -> int`` nanosecond
    counter) for deterministic timestamps.
    """

    __slots__ = ("enabled", "_clock", "_t0", "_pid", "_events", "_stack")

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self.enabled = False
        self._clock = clock if clock is not None else _DEFAULT_CLOCK
        self._t0 = 0
        self._pid = os.getpid()
        self._events: List[Dict[str, Any]] = []
        self._stack: List[Tuple[str, str, float, Dict[str, Any]]] = []

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Tracer":
        """Arm the tracer; timestamps are relative to this call."""
        if not self.enabled:
            self.enabled = True
            self._t0 = self._clock()
            self._pid = os.getpid()
            self._events.append({
                "name": "process_name", "ph": "M",
                "pid": self._pid, "tid": 0,
                "args": {"name": "repro simulation"},
            })
        return self

    def stop(self) -> None:
        """Disarm the tracer; any spans still open are closed at *now*."""
        while self._stack:
            self.end()
        self.enabled = False

    def clear(self) -> None:
        """Drop every recorded event and open span (keeps enabled state)."""
        self._events.clear()
        self._stack.clear()

    # -- recording ------------------------------------------------------------

    def _now_us(self) -> float:
        return (self._clock() - self._t0) / 1000.0

    def begin(self, name: str, cat: str = "sim", **args: Any) -> None:
        """Open a span.  Pair with :meth:`end`; spans nest by call order."""
        if not self.enabled:
            return
        self._stack.append((name, cat, self._now_us(), dict(args)))

    def end(self, **args: Any) -> None:
        """Close the innermost open span, attaching ``args`` to it.

        An unmatched ``end`` (tracer armed mid-span) is ignored rather
        than raised: observation must never abort a simulation.
        """
        if not self.enabled or not self._stack:
            return
        name, cat, start, open_args = self._stack.pop()
        if args:
            open_args.update(args)
        event: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": start, "dur": max(self._now_us() - start, 0.0),
            "pid": self._pid, "tid": 0,
        }
        if open_args:
            event["args"] = open_args
        self._events.append(event)

    def span(self, name: str, cat: str = "sim", **args: Any) -> "_Span":
        """``with TRACER.span("exec.batch"):`` convenience wrapper."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "sim", **args: Any) -> None:
        """A zero-duration marker (thread-scoped)."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": self._now_us(), "pid": self._pid, "tid": 0,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, values: Dict[str, float],
                cat: str = "metric") -> None:
        """A counter sample: Perfetto renders each key as a track."""
        if not self.enabled:
            return
        self._events.append({
            "name": name, "cat": cat, "ph": "C",
            "ts": self._now_us(), "pid": self._pid, "tid": 0,
            "args": dict(values),
        })

    # -- introspection --------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The recorded events (metadata included), in emission order."""
        return list(self._events)

    @property
    def depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def __len__(self) -> int:
        return len(self._events)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object for this trace."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "pid": self._pid},
        }

    def export(self, path: str) -> str:
        """Write the trace JSON to ``path``; returns the path."""
        with io.open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path


class _Span:
    """Context manager pairing one begin/end; see :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args")

    def __init__(self, tracer: Tracer, name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        # simlint: allow[SIM502] span plumbing relays the literal given to Tracer.span
        self._tracer.begin(self._name, self._cat, **self._args)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._tracer.end()


#: The process-wide tracer.  Never rebound; flip with start()/stop() or
#: the enable_tracing()/disable_tracing() helpers.
TRACER = Tracer()


def enable_tracing() -> Tracer:
    """Arm the global tracer and return it."""
    return TRACER.start()


def disable_tracing() -> None:
    """Disarm the global tracer (recorded events are kept until clear())."""
    TRACER.stop()


def tracing_enabled() -> bool:
    return TRACER.enabled


# -- schema validation ---------------------------------------------------------

#: Event phases the validator understands; everything the tracer emits.
_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "M"}


def validate_trace(payload: Any) -> List[str]:
    """Check ``payload`` against the Chrome ``trace_event`` JSON schema.

    Returns a list of problems (empty means valid).  The checks cover the
    subset of the format the tracer emits — object layout, required keys
    per phase, timestamp/duration sanity — which is also what Perfetto's
    legacy JSON importer requires.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if phase in ("X", "B", "E", "i", "I", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event needs an args object")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Load ``path`` and validate it; unreadable/unparsable is a problem."""
    try:
        with io.open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_trace(payload)
