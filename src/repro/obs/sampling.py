"""Per-interval sampling: SimPoint-style breakdowns of a live run.

An :class:`IntervalSampler` rides inside :meth:`OoOCore.run
<repro.cpu.ooo.OoOCore.run>`: every ``interval`` committed trace records
it snapshots the hierarchy's ``stats_report()``, differences it against
the previous snapshot, and publishes the per-interval rates (IPC, L1/L2
MPKI, memory traffic, prefetch issue) as metric series — and, when the
tracer is armed, as Chrome counter events so Perfetto draws them as
tracks under the simulation's spans.

The sampler only *reads* simulator state; it can never change a result,
so a sampled and an unsampled run of the same RunSpec stay bit-for-bit
identical (the content-addressed store depends on that).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.obs.tracing import TRACER, Tracer

#: Default number of intervals a traced run is split into.
DEFAULT_INTERVALS = 10


class IntervalSampler:
    """Delta-based interval sampling over one component subtree."""

    __slots__ = ("component", "interval", "registry", "tracer", "labels",
                 "samples", "_last_stats", "_last_index", "_last_cycle")

    def __init__(
        self,
        component: Any,
        interval: int,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.component = component
        self.interval = max(1, int(interval))
        self.registry = registry if registry is not None else get_default_registry()
        self.tracer = tracer
        self.labels = dict(labels or {})
        self.samples = 0
        self._last_stats: Dict[str, float] = dict(component.stats_report())
        self._last_index = 0
        self._last_cycle = 0

    # -- sampling -------------------------------------------------------------

    def sample(self, index: int, cycle: int) -> None:
        """Record one interval ending at trace record ``index``/``cycle``."""
        stats = self.component.stats_report()
        d_index = index - self._last_index
        d_cycle = cycle - self._last_cycle
        if d_index <= 0:
            return

        def delta(*keys: str) -> float:
            return sum(
                stats.get(key, 0.0) - self._last_stats.get(key, 0.0)
                for key in keys
            )

        kilo = d_index / 1000.0
        rates = {
            "ipc": d_index / d_cycle if d_cycle > 0 else 0.0,
            "l1_mpki": delta("memory.l1d.read_misses",
                             "memory.l1d.write_misses") / kilo,
            "l2_mpki": delta("memory.l2.read_misses",
                             "memory.l2.write_misses") / kilo,
            "mem_requests_pki": delta("memory.memctl.requests",
                                      "memory.constmem.requests") / kilo,
            "prefetches_pki": delta("memory.prefetches_issued") / kilo,
        }
        for key in sorted(rates):
            self.registry.series(
                f"interval.{key}", **self.labels
            ).record(rates[key], x=float(index))
        if self.tracer is not None:
            self.tracer.counter("sim.interval", rates)
        self.samples += 1
        self._last_stats = dict(stats)
        self._last_index = index
        self._last_cycle = cycle

    def finish(self, index: int, cycle: int) -> None:
        """Flush the final (possibly partial) interval."""
        if index > self._last_index:
            self.sample(index, cycle)


def maybe_sampler(component: Any, total: int, **labels: Any
                  ) -> Optional[IntervalSampler]:
    """An :class:`IntervalSampler` when the global tracer is armed, else None.

    This is what :func:`repro.core.simulation.run_trace` calls: interval
    breakdowns come for free on every traced run, and cost exactly one
    integer comparison per trace record otherwise.
    """
    if not TRACER.enabled:
        return None
    interval = max(total // DEFAULT_INTERVALS, 1)
    return IntervalSampler(
        component, interval,
        registry=get_default_registry(), tracer=TRACER, labels=labels,
    )
