"""Unified metrics pipeline: typed, labeled series over raw statistics.

Every module in the tree already accounts for itself through
``StatCounter`` objects that :meth:`Component.stats_report` flattens
into ``{qualified_name: value}`` dicts.  This module is the layer above:
a :class:`MetricsRegistry` harvests those dicts (and whole
:class:`~repro.core.simulation.RunResult` objects, and executor
telemetry) into named, labeled :class:`MetricSeries`, and derives the
rates the paper argues about — IPC, MPKI, bus occupancy, prefetch
accuracy — so every consumer reads the same numbers from one place.

Series are cheap append-only lists; harvesting the same source twice
appends a second sample rather than overwriting, which is exactly what
the per-interval sampler (:mod:`repro.obs.sampling`) leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Canonical label tuple: sorted (key, value) string pairs.
Labels = Tuple[Tuple[str, str], ...]


def _canon_labels(labels: Mapping[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricPoint:
    """One sample of a series: ``x`` is the sampling coordinate.

    ``x`` is the instruction index for interval samples and ``None`` for
    end-of-run totals, so interval breakdowns and whole-run summaries
    live in the same series type.
    """

    value: float
    x: Optional[float] = None


@dataclass
class MetricSeries:
    """A named, labeled sequence of samples."""

    name: str
    unit: str = ""
    labels: Labels = ()
    points: List[MetricPoint] = field(default_factory=list)

    def record(self, value: float, x: Optional[float] = None) -> None:
        self.points.append(MetricPoint(float(value), x))

    @property
    def latest(self) -> float:
        if not self.points:
            return 0.0
        return self.points[-1].value

    def values(self) -> List[float]:
        return [p.value for p in self.points]

    def __len__(self) -> int:
        return len(self.points)


class MetricsRegistry:
    """All series, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Labels], MetricSeries] = {}

    def series(self, name: str, unit: str = "",
               **labels: Any) -> MetricSeries:
        """Get or create the series ``name`` under ``labels``."""
        key = (name, _canon_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = MetricSeries(name=name, unit=unit, labels=key[1])
            self._series[key] = series
        return series

    def get(self, name: str, **labels: Any) -> Optional[MetricSeries]:
        return self._series.get((name, _canon_labels(labels)))

    def latest(self, name: str, default: float = 0.0,
               **labels: Any) -> float:
        series = self.get(name, **labels)
        if series is None or not series.points:
            return default
        return series.latest

    def all_series(self) -> List[MetricSeries]:
        """Every series, sorted by (name, labels) for stable iteration."""
        return [self._series[key] for key in sorted(self._series)]

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def __len__(self) -> int:
        return len(self._series)


#: Process-wide registry the CLI and sampler publish into.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY


def reset_default_registry() -> MetricsRegistry:
    """Fresh default registry (tests); returns the new one."""
    global _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = MetricsRegistry()
    return _DEFAULT_REGISTRY


# -- derivation ----------------------------------------------------------------

def derive_metrics(result: Any) -> Dict[str, float]:
    """The paper's derived rates for one ``RunResult``.

    Works from the result's own fields plus its flattened
    ``stats_report`` dict; a stat the run did not record derives as 0
    (old cached results predating a stat read as missing, never wrong).
    """
    stats: Mapping[str, float] = getattr(result, "stats", {}) or {}
    instructions = float(getattr(result, "instructions", 0) or 0)
    cycles = float(getattr(result, "cycles", 0) or 0)
    kilo = instructions / 1000.0 if instructions else 0.0

    def per_kilo(*keys: str) -> float:
        if not kilo:
            return 0.0
        return sum(stats.get(key, 0.0) for key in keys) / kilo

    def occupancy(key: str) -> float:
        if not cycles:
            return 0.0
        return min(stats.get(key, 0.0) / cycles, 1.0)

    issued = float(getattr(result, "prefetches_issued", 0.0) or 0.0)
    useful = float(getattr(result, "useful_prefetches", 0.0) or 0.0)
    return {
        "ipc": float(getattr(result, "ipc", 0.0) or 0.0),
        "l1_mpki": per_kilo("memory.l1d.read_misses",
                            "memory.l1d.write_misses"),
        "l2_mpki": per_kilo("memory.l2.read_misses",
                            "memory.l2.write_misses"),
        "l1_l2_bus_occupancy": occupancy("memory.l1_l2_bus_busy_cycles"),
        "memory_bus_occupancy": occupancy("memory.memory_bus_busy_cycles"),
        "avg_memory_latency": float(
            getattr(result, "avg_memory_latency", 0.0) or 0.0),
        "memory_accesses_pki": (
            float(getattr(result, "memory_accesses", 0.0) or 0.0) / kilo
            if kilo else 0.0),
        "prefetch_accuracy": useful / issued if issued else 0.0,
    }


#: Units for the derived series (documentation + export).
DERIVED_UNITS = {
    "ipc": "instructions/cycle",
    "l1_mpki": "misses/kilo-instruction",
    "l2_mpki": "misses/kilo-instruction",
    "l1_l2_bus_occupancy": "fraction",
    "memory_bus_occupancy": "fraction",
    "avg_memory_latency": "cycles",
    "memory_accesses_pki": "accesses/kilo-instruction",
    "prefetch_accuracy": "fraction",
}


def harvest_stats(stats: Mapping[str, float], registry: MetricsRegistry,
                  x: Optional[float] = None, **labels: Any) -> int:
    """Ingest one flattened ``stats_report`` dict; returns series touched."""
    for key in sorted(stats):
        registry.series(key, **labels).record(stats[key], x=x)
    return len(stats)


def harvest_result(result: Any, registry: Optional[MetricsRegistry] = None,
                   **extra_labels: Any) -> MetricsRegistry:
    """Publish one ``RunResult`` — raw stats and derived rates.

    Raw statistics keep their qualified names (``memory.l1d.reads``);
    derived rates land under ``derived.<rate>``.  Labels are the run's
    benchmark and mechanism plus anything in ``extra_labels``.
    """
    registry = registry if registry is not None else get_default_registry()
    labels = {
        "benchmark": getattr(result, "benchmark", ""),
        "mechanism": getattr(result, "mechanism", ""),
    }
    labels.update(extra_labels)
    harvest_stats(getattr(result, "stats", {}) or {}, registry, **labels)
    derived = derive_metrics(result)
    for key in sorted(derived):
        registry.series(
            f"derived.{key}", unit=DERIVED_UNITS.get(key, ""), **labels
        ).record(derived[key])
    return registry


# -- executor telemetry --------------------------------------------------------

#: Series names the executor publishes (one value per summary).
EXECUTOR_SERIES = (
    "executor.results", "executor.simulated", "executor.memo_hits",
    "executor.store_hits", "executor.deduped", "executor.batches",
    "executor.wall_seconds", "executor.sim_seconds",
    # fault tolerance (see repro.exec.policy / repro.exec.faults)
    "executor.retries", "executor.failures", "executor.timeouts",
    "executor.pool_rebuilds", "executor.store_corrupt",
    # durability (see repro.exec.journal): specs a resumed run served
    # from the write-ahead sweep journal instead of re-dispatching
    "executor.journal_served",
    # fleet service (see repro.serve): specs this client's submission
    # enqueued vs. answered by another client's in-flight work
    "executor.leased", "executor.shared",
    # fleet hardening: submissions shed by admission control, poison
    # specs resolved by quarantine, deadline-expired holes
    "executor.shed", "executor.quarantined", "executor.expired",
    # mid-run checkpointing (see repro.exec.checkpoint): snapshots cut,
    # attempts resumed from one
    "executor.checkpoints", "executor.resumed_from_ckpt",
)


def harvest_executor(telemetry: Any,
                     registry: Optional[MetricsRegistry] = None,
                     **labels: Any) -> MetricsRegistry:
    """Publish executor telemetry counters into ``registry``.

    The fault counters read through ``getattr`` with a default so a
    pickled/duck-typed telemetry object predating them still harvests.
    """
    registry = registry if registry is not None else get_default_registry()
    values = {
        "executor.results": telemetry.results_returned,
        "executor.simulated": telemetry.simulated,
        "executor.memo_hits": telemetry.memo_hits,
        "executor.store_hits": telemetry.store_hits,
        "executor.deduped": telemetry.deduped,
        "executor.batches": telemetry.batches,
        "executor.wall_seconds": telemetry.wall_time,
        "executor.sim_seconds": telemetry.sim_seconds,
        "executor.retries": getattr(telemetry, "retries", 0),
        "executor.failures": getattr(telemetry, "failures", 0),
        "executor.timeouts": getattr(telemetry, "timeouts", 0),
        "executor.pool_rebuilds": getattr(telemetry, "pool_rebuilds", 0),
        "executor.store_corrupt": getattr(telemetry, "store_corrupt", 0),
        "executor.journal_served": getattr(telemetry, "journal_served", 0),
        "executor.leased": getattr(telemetry, "leased", 0),
        "executor.shared": getattr(telemetry, "shared", 0),
        "executor.shed": getattr(telemetry, "shed", 0),
        "executor.quarantined": getattr(telemetry, "quarantined", 0),
        "executor.expired": getattr(telemetry, "expired", 0),
        "executor.checkpoints": getattr(telemetry, "checkpoints", 0),
        "executor.resumed_from_ckpt": getattr(telemetry,
                                              "resumed_from_ckpt", 0),
    }
    for name in EXECUTOR_SERIES:
        unit = "seconds" if name.endswith("seconds") else "count"
        registry.series(name, unit=unit, **labels).record(values[name])
    return registry


def executor_summary_line(telemetry: Any,
                          registry: Optional[MetricsRegistry] = None) -> str:
    """The one-line executor accounting, rendered *from the registry*.

    This is the single reporting path for single runs, exhibits and
    ``--jobs`` batches: the telemetry counters are harvested into the
    metrics registry and the summary string is built from the registry's
    series, so anything else reading the registry sees exactly the
    numbers the stderr line reports.

    Fault-tolerance counters (retries, timeouts, pool rebuilds, failed
    specs, corrupt store entries) are appended only when nonzero — a
    clean run's line is byte-identical to what it always was.
    """
    registry = harvest_executor(telemetry, registry)
    latest = registry.latest
    results = int(latest("executor.results"))
    simulated = int(latest("executor.simulated"))
    memo = int(latest("executor.memo_hits"))
    store = int(latest("executor.store_hits"))
    deduped = int(latest("executor.deduped"))
    wall = latest("executor.wall_seconds")
    sim_seconds = latest("executor.sim_seconds")
    parts = [
        f"{results} results",
        f"{simulated} simulated",
        f"{memo + store + deduped} cache hits "
        f"({memo} memo, {store} store, {deduped} deduped)",
        f"wall {wall:.2f}s",
    ]
    if simulated:
        parts.append(f"avg {sim_seconds / simulated:.3f}s/sim")
    for name, noun in (
        ("executor.journal_served", "journal-served"),
        ("executor.leased", "leased"),
        ("executor.shared", "shared"),
        ("executor.shed", "shed"),
        ("executor.quarantined", "quarantined"),
        ("executor.expired", "expired"),
        ("executor.checkpoints", "checkpoints"),
        ("executor.resumed_from_ckpt", "resumed-from-ckpt"),
        ("executor.retries", "retries"),
        ("executor.timeouts", "timeouts"),
        ("executor.pool_rebuilds", "pool rebuilds"),
        ("executor.failures", "FAILED"),
        ("executor.store_corrupt", "corrupt store entries"),
    ):
        count = int(latest(name))
        if count:
            parts.append(f"{count} {noun}")
    return "executor: " + ", ".join(parts)
