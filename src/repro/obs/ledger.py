"""The benchmark ledger: a persistent, machine-readable perf trajectory.

Benchmark runs used to write free-text ``benchmarks/out/*.txt`` files:
human-readable, diff-hostile, and invisible to tooling — the repo had no
usable record of whether it was getting faster or slower.  The ledger
fixes that: every benchmark (and the CI smoke run) appends one record to
``BENCH_obs.json`` describing *what* ran (label, spec hash, trace
length), *how fast* (wall seconds, simulated trace records per second),
*how big* (peak RSS) and *where* (host fingerprint), so
``python -m repro.obs diff`` can print a per-metric regression report
between any two entries.

File format
-----------
One JSON object per line (JSON Lines), append-only.  Appends take an
advisory ``flock`` (where the platform provides one) and are a single
``write`` + ``fsync`` of one line, so concurrent writers — parallel CI
shards, a chaos loop resuming while a benchmark finishes — serialise
cleanly instead of relying on the kernel's append atomicity, and a
killed process corrupts at most its own last line.  Reads skip lines
that fail to parse — a corrupt entry costs one record, never the
ledger.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import resource
import sys

try:
    import fcntl
except ImportError:  # non-POSIX: appends fall back to O_APPEND atomicity
    fcntl = None  # type: ignore[assignment]
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Bump when the record layout changes incompatibly; readers keep
#: accepting older records (missing fields default) but tools may warn.
LEDGER_SCHEMA = 1

#: Default ledger file, overridable with ``$REPRO_LEDGER``.
DEFAULT_LEDGER = "BENCH_obs.json"


def default_ledger_path() -> Path:
    env = os.environ.get("REPRO_LEDGER")
    if env:
        return Path(env).expanduser()
    return Path(DEFAULT_LEDGER)


def host_fingerprint() -> Dict[str, Any]:
    """Where a record was measured: enough to group comparable entries."""
    node = platform.node() or "unknown"
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "node": hashlib.sha256(node.encode("utf-8")).hexdigest()[:12],
    }


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class LedgerRecord:
    """One appended measurement."""

    label: str
    timestamp: str = ""
    spec_hash: str = ""
    benchmark: str = ""
    mechanism: str = ""
    n_instructions: int = 0
    wall_seconds: float = 0.0
    events_per_second: float = 0.0   # simulated trace records / wall second
    peak_rss_kb: int = 0
    retries: int = 0   # executor re-attempts behind this measurement
    failures: int = 0  # specs that exhausted every attempt (grid holes)
    host: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LedgerRecord":
        """Build a record from a parsed line, ignoring unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def make_record(
    label: str,
    wall_seconds: float,
    instructions: int = 0,
    spec_hash: str = "",
    benchmark: str = "",
    mechanism: str = "",
    n_instructions: int = 0,
    metrics: Optional[Dict[str, float]] = None,
    retries: int = 0,
    failures: int = 0,
) -> LedgerRecord:
    """Assemble a record, stamping time, host and peak RSS here.

    ``retries``/``failures`` carry the executor's fault accounting so a
    chaos run's ledger entry records how hard it had to fight — and so
    ``diff`` can flag a measurement polluted by retried work.
    """
    rate = instructions / wall_seconds if wall_seconds > 0 and instructions else 0.0
    return LedgerRecord(
        label=label,
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        spec_hash=spec_hash,
        benchmark=benchmark,
        mechanism=mechanism,
        n_instructions=n_instructions or instructions,
        wall_seconds=round(wall_seconds, 6),
        events_per_second=round(rate, 3),
        peak_rss_kb=peak_rss_kb(),
        retries=retries,
        failures=failures,
        host=host_fingerprint(),
        metrics=dict(metrics or {}),
    )


class Ledger:
    """Append-only JSON Lines ledger with forgiving reads."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path).expanduser() if path else default_ledger_path()

    # -- writing --------------------------------------------------------------

    def append(self, record: LedgerRecord) -> LedgerRecord:
        """Durably append one record as a single line.

        The advisory lock is held only for the write+fsync of this one
        line: concurrent appenders queue for milliseconds, and a writer
        killed while holding it releases the lock with its file handle.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(dataclasses.asdict(record), sort_keys=True)
        assert "\n" not in line  # one record is always exactly one line
        with open(self.path, "a", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return record

    # -- reading --------------------------------------------------------------

    def scan(self) -> Tuple[List[LedgerRecord], List[str]]:
        """All readable records plus a note per skipped (corrupt) line."""
        records: List[LedgerRecord] = []
        problems: List[str] = []
        try:
            text = self.path.read_text("utf-8")
        except OSError:
            return records, problems
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("record is not an object")
                records.append(LedgerRecord.from_dict(payload))
            except (ValueError, TypeError) as exc:
                problems.append(f"{self.path}:{lineno}: skipped ({exc})")
        return records, problems

    def read(self) -> List[LedgerRecord]:
        return self.scan()[0]

    def __len__(self) -> int:
        return len(self.read())

    # -- selection ------------------------------------------------------------

    def resolve(self, selector: str) -> LedgerRecord:
        """An entry by selector.

        * ``latest`` / ``prev`` — last / second-to-last entry;
        * an integer — positional index (negatives from the end);
        * ``<label>`` — newest entry with that label;
        * ``<label>@-2`` — nth-from-the-end entry with that label.
        """
        records = self.read()
        if not records:
            raise LookupError(f"ledger {self.path} is empty")
        if selector == "latest":
            return records[-1]
        if selector == "prev":
            if len(records) < 2:
                raise LookupError("ledger has no previous entry")
            return records[-2]
        try:
            return records[int(selector)]
        except ValueError:
            pass
        except IndexError:
            raise LookupError(
                f"index {selector} out of range ({len(records)} entries)"
            ) from None
        label, _, offset = selector.partition("@")
        matches = [r for r in records if r.label == label]
        if not matches:
            raise LookupError(f"no ledger entry labeled {label!r}")
        index = int(offset) if offset else -1
        try:
            return matches[index]
        except IndexError:
            raise LookupError(
                f"label {label!r} has only {len(matches)} entries"
            ) from None


# -- diffing -------------------------------------------------------------------

#: Direction of goodness for the built-in metrics.
LOWER_IS_BETTER = {"wall_seconds", "peak_rss_kb"}
HIGHER_IS_BETTER = {"events_per_second"}

#: Relative change beyond which a worsening metric counts as a regression.
REGRESSION_THRESHOLD = 0.02


@dataclass(frozen=True)
class DiffRow:
    """One metric compared across two ledger entries."""

    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def pct(self) -> float:
        if self.a == 0:
            return 0.0
        return (self.b - self.a) / abs(self.a) * 100.0

    @property
    def regression(self) -> bool:
        if self.a == 0:
            return False
        rel = (self.b - self.a) / abs(self.a)
        if self.metric in LOWER_IS_BETTER:
            return rel > REGRESSION_THRESHOLD
        if self.metric in HIGHER_IS_BETTER:
            return rel < -REGRESSION_THRESHOLD
        return False


def diff_records(a: LedgerRecord, b: LedgerRecord) -> List[DiffRow]:
    """Per-metric comparison of ``a`` (before) and ``b`` (after)."""
    rows = [
        DiffRow("wall_seconds", a.wall_seconds, b.wall_seconds),
        DiffRow("events_per_second", a.events_per_second, b.events_per_second),
        DiffRow("peak_rss_kb", float(a.peak_rss_kb), float(b.peak_rss_kb)),
    ]
    # Fault accounting appears only when either side saw any, so diffs of
    # clean entries (and entries predating the fields) look as before.
    if a.retries or b.retries:
        rows.append(DiffRow("retries", float(a.retries), float(b.retries)))
    if a.failures or b.failures:
        rows.append(DiffRow("failures", float(a.failures), float(b.failures)))
    for key in sorted(set(a.metrics) | set(b.metrics)):
        rows.append(DiffRow(
            key, float(a.metrics.get(key, 0.0)), float(b.metrics.get(key, 0.0))
        ))
    return rows


def render_diff(a: LedgerRecord, b: LedgerRecord) -> str:
    """The regression report ``python -m repro.obs diff`` prints."""
    rows = diff_records(a, b)
    same_host = a.host.get("node") == b.host.get("node")
    lines = [
        f"ledger diff: {a.label or '?'} ({a.timestamp}) -> "
        f"{b.label or '?'} ({b.timestamp})",
        f"  hosts: {'same' if same_host else 'DIFFERENT'}"
        f"  spec: {'same' if a.spec_hash == b.spec_hash and a.spec_hash else 'differs/unknown'}",
        f"  {'metric':<28} {'before':>12} {'after':>12} {'delta':>12} {'%':>8}",
    ]
    regressions = 0
    for row in rows:
        flag = ""
        if row.regression:
            flag = "  << regression"
            regressions += 1
        lines.append(
            f"  {row.metric:<28} {row.a:>12.3f} {row.b:>12.3f} "
            f"{row.delta:>+12.3f} {row.pct:>+7.1f}%{flag}"
        )
    lines.append(
        f"  {regressions} regression{'' if regressions == 1 else 's'} "
        f"(threshold {REGRESSION_THRESHOLD:.0%} on wall/rate/RSS)"
    )
    return "\n".join(lines)
