"""Observability command line: ``python -m repro.obs <command>``.

Commands::

    record          run one reference simulation, append a ledger record
    list            print the ledger's entries
    diff A B        per-metric regression report between two entries
    report          trajectory: latest vs previous entry per label
    validate-trace  check a Chrome trace JSON file against the schema

Entry selectors for ``diff`` accept ``latest``, ``prev``, integer
indices (negatives count from the end) and ``label`` / ``label@-2``
forms; see :meth:`repro.obs.ledger.Ledger.resolve`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.obs.ledger import Ledger, make_record, render_diff
from repro.obs.metrics import derive_metrics
from repro.obs.tracing import validate_trace_file


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.exec.runspec import RunSpec  # deferred: pulls the simulator in

    spec = RunSpec(args.benchmark, args.mechanism, n_instructions=args.n,
                   fast=args.fast)
    ckpt = None
    if args.checkpoint_every:
        # Measure the *enabled* checkpoint path: cut real snapshots
        # into a throwaway tree so the ledger records what the knob
        # actually costs.  At 0 (the default) the run is the ordinary
        # checkpoint-free measurement.
        import tempfile
        from pathlib import Path

        from repro.exec.checkpoint import Checkpointer

        root = Path(tempfile.mkdtemp(prefix="repro-obs-ckpt-"))
        ckpt = Checkpointer(root, spec.content_hash, args.checkpoint_every)
    start = time.perf_counter()
    result = spec.execute(checkpoint=ckpt)
    seconds = time.perf_counter() - start
    if ckpt is not None:
        import shutil

        shutil.rmtree(root, ignore_errors=True)
    label = args.label or f"{args.benchmark}/{args.mechanism}"
    record = make_record(
        label=label,
        wall_seconds=seconds,
        instructions=result.instructions,
        spec_hash=spec.content_hash,
        benchmark=args.benchmark,
        mechanism=args.mechanism,
        n_instructions=args.n,
        metrics=derive_metrics(result),
    )
    Ledger(args.ledger).append(record)
    print(
        f"recorded {label}: wall {record.wall_seconds:.3f}s, "
        f"{record.events_per_second:.0f} events/s, "
        f"peak RSS {record.peak_rss_kb} kB"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    records, problems = ledger.scan()
    for index, record in enumerate(records):
        print(
            f"[{index}] {record.timestamp}  {record.label:<32} "
            f"wall {record.wall_seconds:>8.3f}s  "
            f"{record.events_per_second:>10.0f} ev/s  "
            f"rss {record.peak_rss_kb:>8d} kB"
        )
    for problem in problems:
        print(problem, file=sys.stderr)
    if not records:
        print(f"(ledger {ledger.path} is empty)")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    try:
        before = ledger.resolve(args.a)
        after = ledger.resolve(args.b)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_diff(before, after))
    if args.fail_on_regression:
        from repro.obs.ledger import diff_records
        if any(row.regression for row in diff_records(before, after)):
            return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    records, problems = ledger.scan()
    for problem in problems:
        print(problem, file=sys.stderr)
    if not records:
        print(f"(ledger {ledger.path} is empty)")
        return 0
    labels = []
    for record in records:
        if record.label not in labels:
            labels.append(record.label)
    for label in labels:
        entries = [r for r in records if r.label == label]
        latest = entries[-1]
        line = (
            f"{label:<32} n={len(entries):<3} "
            f"wall {latest.wall_seconds:>8.3f}s  "
            f"{latest.events_per_second:>10.0f} ev/s"
        )
        if len(entries) >= 2:
            prev = entries[-2]
            if prev.wall_seconds:
                pct = (latest.wall_seconds - prev.wall_seconds) \
                    / prev.wall_seconds * 100.0
                line += f"  ({pct:+.1f}% wall vs prev)"
        print(line)
    return 0


def _cmd_validate_trace(args: argparse.Namespace) -> int:
    problems = validate_trace_file(args.path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"INVALID: {args.path} ({len(problems)} problems)",
              file=sys.stderr)
        return 1
    print(f"valid Chrome trace: {args.path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="benchmark ledger and trace tooling",
    )
    parser.add_argument("--ledger", default=None,
                        help="ledger file (default BENCH_obs.json or "
                             "$REPRO_LEDGER)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="run and append one measurement")
    p_record.add_argument("--benchmark", default="swim")
    p_record.add_argument("--mechanism", default="GHB")
    p_record.add_argument("--n", type=int, default=8000,
                          help="instructions to simulate (default 8000)")
    p_record.add_argument("--label", default=None,
                          help="record label (default benchmark/mechanism)")
    p_record.add_argument("--fast", dest="fast", action="store_true",
                          default=True,
                          help="use the trace-speculation fast path "
                               "(default; results are bit-identical "
                               "either way)")
    p_record.add_argument("--no-fast", dest="fast", action="store_false",
                          help="run on the slow path (before/after "
                               "perf comparisons)")
    p_record.add_argument("--checkpoint-every", type=int, default=0,
                          metavar="N",
                          help="cut a crash-safe snapshot every N records "
                               "into a throwaway tree, so the ledger "
                               "measures the enabled checkpoint path "
                               "(default 0: off — the free path)")
    p_record.set_defaults(fn=_cmd_record)

    p_list = sub.add_parser("list", help="print every ledger entry")
    p_list.set_defaults(fn=_cmd_list)

    p_diff = sub.add_parser("diff", help="regression report between entries")
    p_diff.add_argument("a", help="before: latest | prev | index | label[@-N]")
    p_diff.add_argument("b", help="after: same selectors")
    p_diff.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any tracked metric regresses")
    p_diff.set_defaults(fn=_cmd_diff)

    p_report = sub.add_parser("report", help="trajectory summary per label")
    p_report.set_defaults(fn=_cmd_report)

    p_validate = sub.add_parser("validate-trace",
                                help="validate a Chrome trace JSON file")
    p_validate.add_argument("path")
    p_validate.set_defaults(fn=_cmd_validate_trace)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
